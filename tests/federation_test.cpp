// Unit and property tests for Fed (unions of zones).
#include "dbm/federation.h"

#include <gtest/gtest.h>

#include "support/grid_oracle.h"
#include "util/rng.h"

namespace tigat::dbm {
namespace {

using test::GridOracle;

Dbm interval(std::uint32_t dim, std::uint32_t clock, bound_t lo, bound_t hi,
             Strict lo_s = Strict::kWeak, Strict hi_s = Strict::kWeak) {
  Dbm z = Dbm::universal(dim);
  EXPECT_TRUE(z.constrain(clock, 0, make_bound(hi, hi_s)));
  EXPECT_TRUE(z.constrain(0, clock, make_bound(-lo, lo_s)));
  return z;
}

TEST(Fed, AddFiltersIncludedZones) {
  Fed f(2);
  f.add(interval(2, 1, 0, 10));
  f.add(interval(2, 1, 2, 5));  // included: ignored
  EXPECT_EQ(f.size(), 1u);
  f.add(interval(2, 1, 0, 20));  // includes member: replaces it
  EXPECT_EQ(f.size(), 1u);
  EXPECT_TRUE(f.contains_point({0, 15}));
}

TEST(Fed, EmptyBehaviour) {
  Fed f(3);
  EXPECT_TRUE(f.is_empty());
  EXPECT_FALSE(f.contains_point({0, 0, 0}));
  EXPECT_TRUE(f.minus(interval(3, 1, 0, 5)).is_empty());
  EXPECT_TRUE(f.is_subset_of(Fed(3)));
}

TEST(Fed, UnionAndMembership) {
  Fed f(2);
  f.add(interval(2, 1, 0, 1));
  f.add(interval(2, 1, 3, 4));
  EXPECT_EQ(f.size(), 2u);
  EXPECT_TRUE(f.contains_point({0, 0}));
  EXPECT_TRUE(f.contains_point({0, 4}));
  EXPECT_FALSE(f.contains_point({0, 2}));
}

TEST(Fed, MinusSplitsAroundHole) {
  Fed f(Dbm::universal(2));
  const Fed rest = f.minus(interval(2, 1, 2, 3));
  EXPECT_TRUE(rest.contains_point({0, 1}));
  EXPECT_TRUE(rest.contains_point({0, 4}));
  EXPECT_FALSE(rest.contains_point({0, 2}));
  EXPECT_FALSE(rest.contains_point({0, 3}));
  // Boundary strictness: x < 2 and x > 3 are in.
  EXPECT_TRUE(rest.contains_point({0, 3}, 2));  // 1.5 at scale 2
  EXPECT_TRUE(rest.contains_point({0, 7}, 2));  // 3.5
}

TEST(Fed, SubsetIsExactNotPerZone) {
  // [0,4] is covered by [0,2] ∪ [1,4] although it is a subset of
  // neither member; exact (subtraction-based) inclusion must see it.
  Fed cover(2);
  cover.add(interval(2, 1, 0, 2));
  cover.add(interval(2, 1, 1, 4));
  Fed whole(2);
  whole.add(interval(2, 1, 0, 4));
  EXPECT_TRUE(whole.is_subset_of(cover));
  EXPECT_TRUE(cover.is_subset_of(whole));
  EXPECT_TRUE(cover.same_set_as(whole));
}

TEST(Fed, IntersectionDistributes) {
  Fed f(2);
  f.add(interval(2, 1, 0, 2));
  f.add(interval(2, 1, 5, 8));
  Fed g(2);
  g.add(interval(2, 1, 1, 6));
  const Fed h = f.intersection(g);
  EXPECT_TRUE(h.contains_point({0, 1}));
  EXPECT_TRUE(h.contains_point({0, 2}));
  EXPECT_TRUE(h.contains_point({0, 5}));
  EXPECT_TRUE(h.contains_point({0, 6}));
  EXPECT_FALSE(h.contains_point({0, 3}));
  EXPECT_FALSE(h.contains_point({0, 7}));
}

TEST(Fed, ReduceDropsCoveredZones) {
  Fed f(2);
  // Insert in an order the add() filter cannot catch (the big zone
  // arrives while two small ones already overlap it partially).
  f.add(interval(2, 1, 0, 2));
  f.add(interval(2, 1, 3, 5));
  f.add(interval(2, 1, 0, 5));
  f.reduce();
  EXPECT_EQ(f.size(), 1u);
}

TEST(Fed, EarliestEntryDelayOverZones) {
  Fed f(2);
  f.add(interval(2, 1, 5, 6));
  f.add(interval(2, 1, 9, 12));
  EXPECT_EQ(f.earliest_entry_delay({0, 0}), 5);
  EXPECT_EQ(f.earliest_entry_delay({0, 7}), 2);
  EXPECT_EQ(f.earliest_entry_delay({0, 10}), 0);
  EXPECT_FALSE(f.earliest_entry_delay({0, 13}).has_value());
}

TEST(Fed, UpDownOverUnions) {
  Fed f(2);
  f.add(interval(2, 1, 2, 3));
  f.add(interval(2, 1, 7, 8));
  const Fed d = f.down();
  EXPECT_TRUE(d.contains_point({0, 0}));
  EXPECT_TRUE(d.contains_point({0, 5}));  // below [7,8]
  const Fed u = f.up();
  EXPECT_TRUE(u.contains_point({0, 100}));
  EXPECT_FALSE(u.contains_point({0, 1}));
}

// Randomized: federation algebra against the grid oracle.
class FedPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FedPropertyTest, MinusIntersectUnionMatchOracle) {
  constexpr std::int32_t kMax = 4;
  GridOracle grid(3, kMax);
  util::Rng rng(GetParam());
  for (int iter = 0; iter < 20; ++iter) {
    const Fed a = grid.random_fed(rng, kMax, 3);
    const Fed b = grid.random_fed(rng, kMax, 3);
    const Fed diff = a.minus(b);
    const Fed inter = a.intersection(b);
    Fed uni = a;
    uni |= b;
    for (const auto& p : grid.sample_points()) {
      const bool ina = a.contains_point(p, GridOracle::kScale);
      const bool inb = b.contains_point(p, GridOracle::kScale);
      EXPECT_EQ(diff.contains_point(p, GridOracle::kScale), ina && !inb);
      EXPECT_EQ(inter.contains_point(p, GridOracle::kScale), ina && inb);
      EXPECT_EQ(uni.contains_point(p, GridOracle::kScale), ina || inb);
    }
  }
}

TEST_P(FedPropertyTest, SubsetMatchesOracle) {
  constexpr std::int32_t kMax = 3;
  GridOracle grid(3, kMax);
  util::Rng rng(GetParam() + 1000);
  for (int iter = 0; iter < 20; ++iter) {
    const Fed a = grid.random_fed(rng, kMax, 3);
    const Fed b = grid.random_fed(rng, kMax, 3);
    bool sub = true;
    for (const auto& p : grid.sample_points()) {
      if (a.contains_point(p, GridOracle::kScale) &&
          !b.contains_point(p, GridOracle::kScale)) {
        sub = false;
        break;
      }
    }
    EXPECT_EQ(a.is_subset_of(b), sub)
        << a.to_string() << " vs " << b.to_string();
  }
}

TEST_P(FedPropertyTest, ReducePreservesSet) {
  constexpr std::int32_t kMax = 4;
  GridOracle grid(3, kMax);
  util::Rng rng(GetParam() + 2000);
  for (int iter = 0; iter < 20; ++iter) {
    Fed a = grid.random_fed(rng, kMax, 4);
    const Fed before = a;
    a.reduce();
    EXPECT_TRUE(a.same_set_as(before));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FedPropertyTest,
                         ::testing::Values(7u, 8u, 9u, 10u));

}  // namespace
}  // namespace tigat::dbm
