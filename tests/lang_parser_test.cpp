// Tests for the .tg language frontend: token coverage, AST shape,
// elaboration onto tsystem::System, and — most importantly — that
// malformed inputs produce positioned diagnostics without crashing and
// that one parse reports several independent errors (recovery).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "lang/lang.h"
#include "lang/lexer.h"
#include "lang/parser.h"

namespace tigat::lang {
namespace {

using tsystem::LocationKind;
using tsystem::SyncKind;

// ── helpers ───────────────────────────────────────────────────────────

std::optional<LoadedModel> compile(std::string_view src,
                                   std::vector<Diagnostic>& diags) {
  return compile_model(src, "test.tg", diags);
}

std::optional<LoadedModel> compile(std::string_view src) {
  std::vector<Diagnostic> diags;
  return compile(src, diags);
}

// First diagnostic, or a dummy when none exists (every stored
// diagnostic is an error).
const Diagnostic& first_error(const std::vector<Diagnostic>& diags) {
  static const Diagnostic none;
  return diags.empty() ? none : diags.front();
}

std::size_t error_count(const std::vector<Diagnostic>& diags) {
  return diags.size();
}

constexpr std::string_view kTiny = R"(system tiny;
clock x;
chan ctrl go;
chan unctrl out;
int[0, 5] n = 1;
process P uncontrolled {
  loc A;
  loc B { inv x <= 5; }
  init A;
  edge A -> B on go? when x >= 2, n == 1 do x := 0, n := n + 1;
  edge B -> A on out! when x < 5;
}
process E controlled {
  loc E0;
  init E0;
  edge E0 -> E0 on go!;
  edge E0 -> E0 on out?;
}
control: A<> P.B;
)";

// ── lexer ─────────────────────────────────────────────────────────────

TEST(LangLexer, TokenKindsAndPositions) {
  const Source source("lex.tg", "edge A -> B when x >= 2 do x := 0; // c");
  DiagnosticSink sink(source);
  const std::vector<Token> toks = lex(source, sink);
  EXPECT_FALSE(sink.has_errors());

  const std::vector<TokKind> kinds = {
      TokKind::kIdent, TokKind::kIdent, TokKind::kArrow, TokKind::kIdent,
      TokKind::kIdent, TokKind::kIdent, TokKind::kGe,    TokKind::kNumber,
      TokKind::kIdent, TokKind::kIdent, TokKind::kAssignOp,
      TokKind::kNumber, TokKind::kSemi, TokKind::kEof};
  ASSERT_EQ(toks.size(), kinds.size());
  for (std::size_t i = 0; i < kinds.size(); ++i) {
    EXPECT_EQ(toks[i].kind, kinds[i]) << "token " << i;
  }
  EXPECT_EQ(toks[0].text, "edge");
  EXPECT_EQ(toks[0].pos.offset, 0u);
  EXPECT_EQ(toks[2].pos.offset, 7u);   // ->
  EXPECT_EQ(toks[7].number, 2);
  EXPECT_EQ(toks[7].pos.offset, 22u);  // the '2'
}

TEST(LangLexer, OperatorsCommentsAndStrings) {
  const Source source(
      "lex.tg", "<= < >= > == != := = ! ? && || .. /* block */ \"hi\" 17");
  DiagnosticSink sink(source);
  const std::vector<Token> toks = lex(source, sink);
  EXPECT_FALSE(sink.has_errors());
  const std::vector<TokKind> kinds = {
      TokKind::kLe, TokKind::kLt, TokKind::kGe, TokKind::kGt, TokKind::kEqEq,
      TokKind::kNotEq, TokKind::kAssignOp, TokKind::kEquals, TokKind::kBang,
      TokKind::kQuestion, TokKind::kAndAnd, TokKind::kOrOr, TokKind::kDotDot,
      TokKind::kString, TokKind::kNumber, TokKind::kEof};
  ASSERT_EQ(toks.size(), kinds.size());
  for (std::size_t i = 0; i < kinds.size(); ++i) {
    EXPECT_EQ(toks[i].kind, kinds[i]) << "token " << i;
  }
  EXPECT_EQ(toks[13].text, "hi");
  EXPECT_EQ(toks[14].number, 17);
}

TEST(LangLexer, JunkCharacterIsPositionedAndRecovered) {
  const Source source("lex.tg", "clock x;\n@ clock y;");
  DiagnosticSink sink(source);
  const std::vector<Token> toks = lex(source, sink);
  ASSERT_TRUE(sink.has_errors());
  EXPECT_EQ(sink.diagnostics()[0].line, 2u);
  EXPECT_EQ(sink.diagnostics()[0].column, 1u);
  EXPECT_NE(sink.diagnostics()[0].message.find("unexpected character"),
            std::string::npos);
  // Lexing continued past the junk: both clock declarations tokenised.
  std::size_t idents = 0;
  for (const Token& t : toks) idents += t.kind == TokKind::kIdent;
  EXPECT_EQ(idents, 4u);  // clock, x, clock, y
}

// ── parser / AST ──────────────────────────────────────────────────────

TEST(LangParser, BuildsExpectedAst) {
  const Source source("ast.tg", std::string(kTiny));
  DiagnosticSink sink(source);
  const ModelAst ast = parse(source, sink);
  EXPECT_FALSE(sink.has_errors()) << sink.render_all();

  EXPECT_EQ(ast.system_name, "tiny");
  ASSERT_EQ(ast.clocks.size(), 1u);
  EXPECT_EQ(ast.clocks[0].name, "x");
  ASSERT_EQ(ast.channels.size(), 2u);
  EXPECT_TRUE(ast.channels[0].controllable);
  EXPECT_FALSE(ast.channels[1].controllable);
  ASSERT_EQ(ast.variables.size(), 1u);
  EXPECT_EQ(ast.variables[0].name, "n");
  ASSERT_EQ(ast.processes.size(), 2u);

  const ProcessDeclAst& p = ast.processes[0];
  EXPECT_EQ(p.name, "P");
  EXPECT_FALSE(p.controllable_default);
  ASSERT_EQ(p.locations.size(), 2u);
  EXPECT_EQ(p.locations[1].invariants.size(), 1u);
  EXPECT_EQ(p.init_loc, "A");
  ASSERT_EQ(p.items.size(), 2u);
  ASSERT_TRUE(p.items[0].edge.has_value());
  ASSERT_TRUE(p.items[1].edge.has_value());
  const EdgeDeclAst& e = *p.items[0].edge;
  EXPECT_EQ(e.src, "A");
  EXPECT_EQ(e.dst, "B");
  ASSERT_TRUE(e.sync.has_value());
  EXPECT_EQ(e.sync->channel, "go");
  EXPECT_FALSE(e.sync->send);
  EXPECT_EQ(e.guards.size(), 2u);
  ASSERT_EQ(e.updates.size(), 2u);
  EXPECT_EQ(e.updates[0].target, "x");
  EXPECT_EQ(e.updates[1].target, "n");

  ASSERT_EQ(ast.controls.size(), 1u);
  EXPECT_EQ(ast.controls[0].text, "A<> P.B");
}

TEST(LangParser, QuantifierAndOperatorPrecedence) {
  const Source source(
      "q.tg",
      "process P controlled { loc A; init A;\n"
      "edge A -> A when forall (i : 0..2) a[i] == 1 and 1 + 2 * 3 == 7; }");
  DiagnosticSink sink(source);
  const ModelAst ast = parse(source, sink);
  EXPECT_FALSE(sink.has_errors()) << sink.render_all();
  ASSERT_EQ(ast.processes.size(), 1u);
  ASSERT_EQ(ast.processes[0].items.size(), 1u);
  ASSERT_TRUE(ast.processes[0].items[0].edge.has_value());
  const ExprAst& guard = *ast.processes[0].items[0].edge->guards.at(0);
  // Max-munch quantifier body: the `and` is inside the forall.
  EXPECT_EQ(guard.kind, ExprAst::Kind::kQuantifier);
  EXPECT_TRUE(guard.is_forall);
  const ExprAst& body = *guard.lhs;
  EXPECT_EQ(body.kind, ExprAst::Kind::kBinary);
  EXPECT_EQ(body.bin_op, BinOp::kAnd);
  // 1 + 2 * 3 == 7 parses as (1 + (2 * 3)) == 7.
  const ExprAst& cmp = *body.rhs;
  EXPECT_EQ(cmp.bin_op, BinOp::kEq);
  EXPECT_EQ(cmp.lhs->bin_op, BinOp::kAdd);
  EXPECT_EQ(cmp.lhs->rhs->bin_op, BinOp::kMul);
}

// ── elaboration ───────────────────────────────────────────────────────

TEST(LangElaborate, LowersTinyModelOntoSystem) {
  const auto model = compile(kTiny);
  ASSERT_TRUE(model.has_value());
  const tsystem::System& sys = model->system;
  EXPECT_TRUE(sys.finalized());
  EXPECT_EQ(sys.name(), "tiny");
  EXPECT_EQ(sys.clock_count(), 2u);  // reference + x
  EXPECT_TRUE(sys.find_clock("x").has_value());
  ASSERT_EQ(sys.channels().size(), 2u);
  EXPECT_EQ(sys.channels()[0].control, tsystem::Controllability::kControllable);
  EXPECT_EQ(sys.channels()[1].control,
            tsystem::Controllability::kUncontrollable);
  EXPECT_TRUE(sys.data().find("n").has_value());

  ASSERT_EQ(sys.processes().size(), 2u);
  const tsystem::Process& p = sys.processes()[0];
  EXPECT_EQ(p.name(), "P");
  ASSERT_EQ(p.locations().size(), 2u);
  EXPECT_EQ(p.locations()[1].invariant.size(), 1u);
  EXPECT_EQ(p.initial(), 0u);
  ASSERT_EQ(p.edges().size(), 2u);
  const tsystem::Edge& e0 = p.edges()[0];
  EXPECT_EQ(e0.sync, SyncKind::kReceive);
  EXPECT_EQ(e0.guard.size(), 1u);            // x >= 2
  EXPECT_FALSE(e0.data_guard.is_null());     // n == 1
  EXPECT_EQ(e0.resets.size(), 1u);           // x := 0
  EXPECT_EQ(e0.assignments.size(), 1u);      // n := n + 1
  EXPECT_TRUE(sys.edge_controllable(p, e0));  // go is controllable
  EXPECT_FALSE(sys.edge_controllable(p, p.edges()[1]));

  ASSERT_EQ(model->purposes.size(), 1u);
  EXPECT_EQ(model->purposes[0].kind, tsystem::PurposeKind::kReach);
}

TEST(LangElaborate, ClockEqualityExpandsToTwoWeakBounds) {
  const auto model = compile(
      "clock x;\n"
      "process P controlled { loc A; loc B; init A;\n"
      "  edge A -> B when x == 3; }\n");
  ASSERT_TRUE(model.has_value());
  const tsystem::Edge& e = model->system.processes()[0].edges()[0];
  ASSERT_EQ(e.guard.size(), 2u);
  EXPECT_EQ(e.guard[0].bound, dbm::make_weak(3));   // x - 0 <= 3
  EXPECT_EQ(e.guard[1].bound, dbm::make_weak(-3));  // 0 - x <= -3
}

TEST(LangElaborate, ClockDifferenceUrgencyOverridesAndLabels) {
  const auto model = compile(
      "clock x, y;\n"
      "chan ctrl go;\n"
      "process P uncontrolled {\n"
      "  loc A; urgent loc U; committed loc C; init A;\n"
      "  edge A -> U when x - y <= 4 ctrl label \"hop\";\n"
      "  edge U -> C on go? unctrl;\n"
      "}\n");
  ASSERT_TRUE(model.has_value());
  const tsystem::Process& p = model->system.processes()[0];
  EXPECT_EQ(p.locations()[1].kind, LocationKind::kUrgent);
  EXPECT_EQ(p.locations()[2].kind, LocationKind::kCommitted);
  const tsystem::Edge& e0 = p.edges()[0];
  ASSERT_EQ(e0.guard.size(), 1u);
  EXPECT_EQ(e0.guard[0].i, 1u);  // x
  EXPECT_EQ(e0.guard[0].j, 2u);  // y
  EXPECT_EQ(e0.comment, "hop");
  EXPECT_TRUE(model->system.edge_controllable(p, e0));           // ctrl
  EXPECT_FALSE(model->system.edge_controllable(p, p.edges()[1]));  // unctrl
}

TEST(LangElaborate, ArraysQuantifiersAndInitDefaults) {
  const auto model = compile(
      "int[0, 1] inUse[3];\n"
      "int[2, 7] floor;\n"  // 0 outside range: defaults to lo = 2
      "process P controlled { loc A; init A;\n"
      "  edge A -> A when forall (i : inUse) inUse[i] == 0 do floor := 3;\n"
      "}\n");
  ASSERT_TRUE(model.has_value());
  const tsystem::DataLayout& data = model->system.data();
  const auto in_use = data.find("inUse");
  ASSERT_TRUE(in_use.has_value());
  EXPECT_EQ(data.decl(*in_use).size, 3u);
  const auto floor_var = data.find("floor");
  ASSERT_TRUE(floor_var.has_value());
  EXPECT_EQ(data.decl(*floor_var).init, 2);
  const tsystem::Edge& e = model->system.processes()[0].edges()[0];
  EXPECT_FALSE(e.data_guard.is_null());
  EXPECT_EQ(e.assignments.size(), 1u);
}

// ── diagnostics on malformed inputs ───────────────────────────────────

TEST(LangDiagnostics, UnknownClockInReset) {
  std::vector<Diagnostic> diags;
  const auto model = compile(
      "clock x;\n"
      "process P controlled { loc A; init A;\n"
      "  edge A -> A do q := 0;\n"
      "}\n",
      diags);
  EXPECT_FALSE(model.has_value());
  const Diagnostic& d = first_error(diags);
  EXPECT_EQ(d.line, 3u);
  EXPECT_EQ(d.column, 18u);  // the 'q'
  EXPECT_NE(d.message.find("unknown clock or variable 'q'"),
            std::string::npos);
}

TEST(LangDiagnostics, UnknownIdentifierInGuard) {
  std::vector<Diagnostic> diags;
  const auto model = compile(
      "clock x;\n"
      "process P controlled { loc A; init A;\n"
      "  edge A -> A when q >= 2;\n"
      "}\n",
      diags);
  EXPECT_FALSE(model.has_value());
  const Diagnostic& d = first_error(diags);
  EXPECT_EQ(d.line, 3u);
  EXPECT_EQ(d.column, 20u);
  EXPECT_NE(d.message.find("unknown identifier 'q'"), std::string::npos);
}

TEST(LangDiagnostics, DuplicateLocation) {
  std::vector<Diagnostic> diags;
  const auto model = compile(
      "process P controlled {\n"
      "  loc A;\n"
      "  loc A;\n"
      "  init A;\n"
      "}\n",
      diags);
  EXPECT_FALSE(model.has_value());
  const Diagnostic& d = first_error(diags);
  EXPECT_EQ(d.line, 3u);
  EXPECT_EQ(d.column, 7u);
  EXPECT_NE(d.message.find("duplicate location 'A' in process 'P'"),
            std::string::npos);
}

TEST(LangDiagnostics, SyncOnUndeclaredChannel) {
  std::vector<Diagnostic> diags;
  const auto model = compile(
      "process P controlled { loc A; init A;\n"
      "  edge A -> A on nochan?;\n"
      "}\n",
      diags);
  EXPECT_FALSE(model.has_value());
  const Diagnostic& d = first_error(diags);
  EXPECT_EQ(d.line, 2u);
  EXPECT_EQ(d.column, 18u);
  EXPECT_NE(d.message.find("unknown channel 'nochan'"), std::string::npos);
}

TEST(LangDiagnostics, SyncOnNonChannelNamesTheCategory) {
  std::vector<Diagnostic> diags;
  const auto model = compile(
      "clock x;\n"
      "process P controlled { loc A; init A;\n"
      "  edge A -> A on x?;\n"
      "}\n",
      diags);
  EXPECT_FALSE(model.has_value());
  EXPECT_NE(first_error(diags).message.find("'x' is a clock, not a channel"),
            std::string::npos);
}

TEST(LangDiagnostics, LexicalJunkDoesNotCrash) {
  std::vector<Diagnostic> diags;
  const auto model = compile("clock x;\n\x01\x02 process @ {\n", diags);
  EXPECT_FALSE(model.has_value());
  EXPECT_GE(error_count(diags), 1u);
  EXPECT_EQ(first_error(diags).line, 2u);
}

TEST(LangDiagnostics, MultiErrorRecoveryReportsSeveralInOnePass) {
  // Three independent syntax errors, one parse.
  std::vector<Diagnostic> diags;
  const auto model = compile(
      "clock x;\n"
      "clok y;\n"                                   // error 1: typo keyword
      "process P controlled {\n"
      "  loc A;\n"
      "  init A;\n"
      "  edge A -> ;\n"                             // error 2: missing target
      "  edge A -> A on go;\n"                      // error 3: missing !/?
      "}\n",
      diags);
  EXPECT_FALSE(model.has_value());
  EXPECT_GE(error_count(diags), 3u) << "recovery must keep going";
  bool saw_decl = false, saw_target = false, saw_sync = false;
  for (const Diagnostic& d : diags) {
    saw_decl |= d.message.find("expected a declaration") != std::string::npos;
    saw_target |= d.message.find("expected target location") !=
                  std::string::npos;
    saw_sync |= d.message.find("'!' or '?'") != std::string::npos;
  }
  EXPECT_TRUE(saw_decl);
  EXPECT_TRUE(saw_target);
  EXPECT_TRUE(saw_sync);
  // Elaboration errors likewise all surface in one pass (parse errors
  // stop elaboration, so these need a syntactically clean input).
  std::vector<Diagnostic> diags2;
  const auto model2 = compile(
      "process P controlled {\n"
      "  loc A;\n"
      "  loc A;\n"
      "  init A;\n"
      "  edge A -> Nowhere;\n"
      "  edge A -> A on nochan!;\n"
      "}\n",
      diags2);
  EXPECT_FALSE(model2.has_value());
  EXPECT_GE(error_count(diags2), 3u);
  bool saw_duplicate = false, saw_unknown_loc = false, saw_unknown_chan = false;
  for (const Diagnostic& d : diags2) {
    saw_duplicate |= d.message.find("duplicate location") != std::string::npos;
    saw_unknown_loc |=
        d.message.find("unknown location 'Nowhere'") != std::string::npos;
    saw_unknown_chan |=
        d.message.find("unknown channel 'nochan'") != std::string::npos;
  }
  EXPECT_TRUE(saw_duplicate);
  EXPECT_TRUE(saw_unknown_loc);
  EXPECT_TRUE(saw_unknown_chan);
}

TEST(LangDiagnostics, InvariantsMustConstrainClocks) {
  std::vector<Diagnostic> diags;
  const auto model = compile(
      "int[0, 1] n;\n"
      "process P controlled { loc A { inv n == 1; } init A; }\n",
      diags);
  EXPECT_FALSE(model.has_value());
  EXPECT_NE(first_error(diags).message.find("invariants may only constrain"),
            std::string::npos);
}

TEST(LangDiagnostics, MissingInitAndNonConstantClockBound) {
  std::vector<Diagnostic> diags;
  const auto model = compile(
      "clock x;\n"
      "int[0, 3] n;\n"
      "process P controlled { loc A;\n"
      "  edge A -> A when x <= n;\n"
      "}\n",
      diags);
  EXPECT_FALSE(model.has_value());
  bool saw_init = false, saw_bound = false;
  for (const Diagnostic& d : diags) {
    saw_init |= d.message.find("has no 'init'") != std::string::npos;
    saw_bound |= d.message.find("constant integer bound") != std::string::npos;
  }
  EXPECT_TRUE(saw_init);
  EXPECT_TRUE(saw_bound);
}

TEST(LangDiagnostics, ControlPropertyErrorsArePositioned) {
  std::vector<Diagnostic> diags;
  const auto model = compile(
      "clock x;\n"
      "process P controlled { loc A; init A; }\n"
      "control: A<> P.Nowhere;\n",
      diags);
  EXPECT_FALSE(model.has_value());
  const Diagnostic& d = first_error(diags);
  EXPECT_EQ(d.line, 3u);
  EXPECT_EQ(d.column, 16u);  // exactly at 'Nowhere'
  EXPECT_NE(d.message.find("Nowhere"), std::string::npos);
}

TEST(LangDiagnostics, StrayClosingBraceAtTopLevelTerminates) {
  // Regression: '}' at the top level used to loop forever (sync stops
  // *at* '}' without consuming it).
  std::vector<Diagnostic> diags;
  const auto model = compile("}}}\nclock x;\n}", diags);
  EXPECT_FALSE(model.has_value());
  EXPECT_GE(error_count(diags), 1u);
}

TEST(LangDiagnostics, ErrorFloodIsCappedOnGarbageInput) {
  std::vector<Diagnostic> diags;
  const std::string garbage(100000, '@');
  const auto model = compile(garbage, diags);
  EXPECT_FALSE(model.has_value());
  // Stored diagnostics are bounded; the tail is a suppression marker.
  EXPECT_LE(diags.size(), DiagnosticSink::kMaxStoredErrors + 1);
  EXPECT_NE(diags.back().message.find("too many errors"), std::string::npos);
}

TEST(LangDiagnostics, OverlongIntegerLiteralIsRejected) {
  std::vector<Diagnostic> diags;
  const auto model = compile(
      "clock x;\n"
      "process P controlled { loc A; init A;\n"
      "  edge A -> A when x <= 1111111111111111111111111;\n"
      "}\n",
      diags);
  EXPECT_FALSE(model.has_value());
  EXPECT_NE(first_error(diags).message.find("out of range"),
            std::string::npos);
}

TEST(LangElaborate, SizeOneArraysIndexLikeArrays) {
  const auto model = compile(
      "int[0, 1] mark[1];\n"
      "process P controlled { loc A; init A;\n"
      "  edge A -> A when mark[0] == 0 do mark[0] := 1;\n"
      "}\n");
  ASSERT_TRUE(model.has_value());
  const auto var = model->system.data().find("mark");
  ASSERT_TRUE(var.has_value());
  EXPECT_TRUE(model->system.data().decl(*var).is_array());
}

TEST(LangParser, CommentsInsideControlPropertiesAreIgnored) {
  const auto model = compile(
      "clock x;\n"
      "process P controlled { loc A; loc B; init A; }\n"
      "control: A<> /* goal */ P.B  // trailing\n;\n");
  ASSERT_TRUE(model.has_value());
  ASSERT_EQ(model->purposes.size(), 1u);
}

TEST(LangDiagnostics, ConstantFoldOverflowIsAnErrorNotUB) {
  std::vector<Diagnostic> diags;
  const auto model = compile(
      "int[0, 1099511627776 * 1099511627776] v;\n"
      "process P controlled { loc A; init A; }\n",
      diags);
  EXPECT_FALSE(model.has_value());
  EXPECT_NE(first_error(diags).message.find("constant integer"),
            std::string::npos);
}

TEST(LangDiagnostics, ScalarQuantifierRangeInPurposeIsRejected) {
  std::vector<Diagnostic> diags;
  const auto model = compile(
      "int[0, 5] n = 3;\n"
      "process P controlled { loc A; loc B; init A; }\n"
      "control: A<> forall (i : n) P.B;\n",
      diags);
  EXPECT_FALSE(model.has_value());
  EXPECT_NE(first_error(diags).message.find("'n' is not an array"),
            std::string::npos);
}

TEST(LangDiagnostics, DeeplyNestedExpressionIsAnErrorNotAStackOverflow) {
  std::vector<Diagnostic> diags;
  const std::string nest(5000, '(');
  const auto model = compile("int[0, 1] v;\n"
                             "process P controlled { loc A; init A;\n"
                             "  edge A -> A when " + nest + "v;\n}\n",
                             diags);
  EXPECT_FALSE(model.has_value());
  EXPECT_NE(first_error(diags).message.find("too deeply nested"),
            std::string::npos);
}

TEST(LangDiagnostics, DuplicateInitAndSystemDeclarations) {
  std::vector<Diagnostic> diags;
  const auto model = compile(
      "system one;\nsystem two;\n"
      "process P controlled { loc A; loc B; init A; init B; }\n",
      diags);
  EXPECT_FALSE(model.has_value());
  bool saw_system = false, saw_init = false;
  for (const Diagnostic& d : diags) {
    saw_system |= d.message.find("duplicate 'system'") != std::string::npos;
    saw_init |= d.message.find("duplicate 'init'") != std::string::npos;
  }
  EXPECT_TRUE(saw_system);
  EXPECT_TRUE(saw_init);
}

TEST(LangParser, MultiNameIntDeclarationSharesBounds) {
  const auto model = compile(
      "int[2, 7] a, b = 5;\n"
      "process P controlled { loc A; init A; }\n");
  ASSERT_TRUE(model.has_value());
  const tsystem::DataLayout& data = model->system.data();
  for (const char* name : {"a", "b"}) {
    const auto var = data.find(name);
    ASSERT_TRUE(var.has_value()) << name;
    EXPECT_EQ(data.decl(*var).lo, 2) << name;
    EXPECT_EQ(data.decl(*var).hi, 7) << name;
  }
  EXPECT_EQ(data.decl(*data.find("a")).init, 2);  // defaulted to lo
  EXPECT_EQ(data.decl(*data.find("b")).init, 5);
}

TEST(LangDiagnostics, VariableBoundsMustFitInt32) {
  std::vector<Diagnostic> diags;
  const auto model = compile(
      "int[0, 4294967297] n;\n"
      "process P controlled { loc A; init A; }\n",
      diags);
  EXPECT_FALSE(model.has_value());
  EXPECT_NE(first_error(diags).message.find("32-bit"), std::string::npos);
}

TEST(LangDiagnostics, RenderedReportCarriesSnippetAndCaret) {
  std::vector<Diagnostic> diags;
  compile("process P controlled { loc A; init A;\n  edge A -> B;\n}\n",
          diags);
  const Diagnostic& d = first_error(diags);
  EXPECT_EQ(d.line, 2u);
  const std::string rendered = d.render("bad.tg");
  EXPECT_NE(rendered.find("bad.tg:2:"), std::string::npos);
  EXPECT_NE(rendered.find("edge A -> B;"), std::string::npos);
  EXPECT_NE(rendered.find("^"), std::string::npos);
}

TEST(LangDiagnostics, DuplicateAcrossCategories) {
  std::vector<Diagnostic> diags;
  const auto model = compile(
      "clock x;\nchan ctrl x;\n"
      "process P controlled { loc A; init A; }\n",
      diags);
  EXPECT_FALSE(model.has_value());
  const Diagnostic& d = first_error(diags);
  EXPECT_EQ(d.line, 2u);
  EXPECT_NE(d.message.find("'x' is already declared as a clock"),
            std::string::npos);
}

// ── const declarations ────────────────────────────────────────────────

TEST(LangParser, ConstDeclarationsFoldAcrossDeclarations) {
  const auto model = compile(
      "clock x;\n"
      "const N = 3;\n"
      "const MaxAddr = N - 1, Window = 2 * MaxAddr;\n"
      "int[0, MaxAddr] best = MaxAddr;\n"
      "int[0, 1] inUse[N];\n"
      "process P controlled {\n"
      "  loc A { inv x <= Window; }\n"
      "  init A;\n"
      "  edge A -> A when x >= Window - 3, best == MaxAddr do x := 0;\n"
      "}\n");
  ASSERT_TRUE(model.has_value());
  const tsystem::DataLayout& data = model->system.data();
  EXPECT_EQ(data.decl(*data.find("best")).hi, 2);
  EXPECT_EQ(data.decl(*data.find("best")).init, 2);
  EXPECT_EQ(data.decl(*data.find("inUse")).size, 3u);
  // Window = 4 landed in the invariant: the max constant of x is 4.
  EXPECT_EQ(model->system.max_constants()[1], 4);
  // Constants never become data slots.
  EXPECT_FALSE(data.find("N").has_value());
  EXPECT_FALSE(data.find("Window").has_value());
}

TEST(LangDiagnostics, ConstForwardReferenceIsAnError) {
  std::vector<Diagnostic> diags;
  const auto model = compile(
      "const A = B + 1;\nconst B = 2;\n"
      "process P controlled { loc A0; init A0; }\n",
      diags);
  EXPECT_FALSE(model.has_value());
  EXPECT_EQ(first_error(diags).line, 1u);
  EXPECT_NE(first_error(diags).message.find("constant integer expression"),
            std::string::npos);
}

TEST(LangDiagnostics, ConstClashesWithOtherNamespaces) {
  std::vector<Diagnostic> diags;
  const auto model = compile(
      "clock x;\nconst x = 1;\n"
      "process P controlled { loc A; init A; }\n",
      diags);
  EXPECT_FALSE(model.has_value());
  EXPECT_NE(first_error(diags).message.find("'x' is already declared as a "
                                            "clock"),
            std::string::npos);
}

TEST(LangDiagnostics, ConstCannotBeAssigned) {
  std::vector<Diagnostic> diags;
  const auto model = compile(
      "const K = 1;\n"
      "process P controlled { loc A; init A;\n"
      "  edge A -> A do K := 2;\n}\n",
      diags);
  EXPECT_FALSE(model.has_value());
  EXPECT_NE(first_error(diags).message.find("'K' is a constant and cannot be "
                                            "assigned"),
            std::string::npos);
}

TEST(LangDiagnostics, ConstSyntaxErrorsRecover) {
  std::vector<Diagnostic> diags;
  compile(
      "const = 3;\nconst K = 4;\nclock x;\n"
      "process P controlled { loc A { inv x <= K; } init A; }\n",
      diags);
  // The first declaration is reported; the rest of the file still
  // parses and K resolves (no cascade).
  EXPECT_EQ(error_count(diags), 1u);
  EXPECT_EQ(first_error(diags).line, 1u);
}

// ── templates, for blocks and arrays ──────────────────────────────────

TEST(LangParser, TemplateAndInstantiationAstShape) {
  const Source source(
      "tpl.tg",
      "const N = 3;\n"
      "template P(i : 0..N-1) uncontrolled {\n"
      "  loc A; init A;\n"
      "  for (k : 0..i) { edge A -> A when k == i; }\n"
      "}\n"
      "system P(0), P(2) as Two, P(j) for j in 0..N-1;\n");
  DiagnosticSink sink(source);
  const ModelAst ast = parse(source, sink);
  EXPECT_FALSE(sink.has_errors()) << sink.render_all();

  ASSERT_EQ(ast.templates.size(), 1u);
  const TemplateDeclAst& tpl = ast.templates[0];
  EXPECT_EQ(tpl.body.name, "P");
  EXPECT_EQ(tpl.param, "i");
  EXPECT_FALSE(tpl.body.controllable_default);
  ASSERT_EQ(tpl.body.items.size(), 1u);
  ASSERT_TRUE(tpl.body.items[0].loop.has_value());
  const ForBlockAst& loop = *tpl.body.items[0].loop;
  EXPECT_EQ(loop.var, "k");
  ASSERT_EQ(loop.items.size(), 1u);
  EXPECT_TRUE(loop.items[0].edge.has_value());

  ASSERT_EQ(ast.instantiations.size(), 1u);
  const InstantiationAst& inst = ast.instantiations[0];
  ASSERT_EQ(inst.items.size(), 3u);
  EXPECT_EQ(inst.items[0].template_name, "P");
  EXPECT_TRUE(inst.items[0].as_name.empty());
  EXPECT_EQ(inst.items[1].as_name, "Two");
  EXPECT_EQ(inst.items[2].loop_var, "j");
  ASSERT_TRUE(inst.items[2].loop_lo != nullptr);
  ASSERT_TRUE(inst.items[2].loop_hi != nullptr);
  // `system P(...)` is an instantiation, not the system name.
  EXPECT_TRUE(ast.system_name.empty());
  ASSERT_EQ(ast.unit_order.size(), 1u);
  EXPECT_EQ(ast.unit_order[0].kind, ModelAst::UnitKind::kInstantiation);
}

TEST(LangParser, ChannelArraysSyncIndicesAndWholeArrayUpdates) {
  const Source source(
      "arr.tg",
      "chan ctrl send[4];\n"
      "int[0, 1] a[4];\n"
      "process P controlled {\n"
      "  loc A; init A;\n"
      "  edge A -> A on send[2]! do a[] := 0;\n"
      "}\n");
  DiagnosticSink sink(source);
  const ModelAst ast = parse(source, sink);
  EXPECT_FALSE(sink.has_errors()) << sink.render_all();
  ASSERT_EQ(ast.channels.size(), 1u);
  EXPECT_TRUE(ast.channels[0].size != nullptr);
  const EdgeDeclAst& e = *ast.processes[0].items[0].edge;
  ASSERT_TRUE(e.sync.has_value());
  EXPECT_TRUE(e.sync->index != nullptr);
  EXPECT_TRUE(e.sync->send);
  ASSERT_EQ(e.updates.size(), 1u);
  EXPECT_TRUE(e.updates[0].whole_array);
  EXPECT_TRUE(e.updates[0].index == nullptr);
}

TEST(LangDiagnostics, DeeplyNestedForBlocksAreAnErrorNotAStackOverflow) {
  std::string body;
  for (int i = 0; i < 200; ++i) body += "for (i : 0..1) { ";
  body += "edge A -> A;";
  for (int i = 0; i < 200; ++i) body += " }";
  std::vector<Diagnostic> diags;
  const auto model = compile(
      "process P controlled { loc A; init A;\n" + body + "\n}\n", diags);
  EXPECT_FALSE(model.has_value());
  bool saw_depth = false;
  for (const Diagnostic& d : diags) {
    saw_depth |= d.message.find("nested too deeply") != std::string::npos;
  }
  EXPECT_TRUE(saw_depth);
}

TEST(LangDiagnostics, RuntimeGuardOnStampedEdgeStillChecksBounds) {
  // A `for` variable is a constant inside the loop: using it as a
  // clock bound must work, and the loop dies cleanly on a bad body.
  const auto model = compile(
      "clock x;\n"
      "process P controlled {\n"
      "  loc A; init A;\n"
      "  for (i : 1..3) { edge A -> A when x <= i; }\n"
      "}\n");
  ASSERT_TRUE(model.has_value());
  const tsystem::Process& p = model->system.processes()[0];
  ASSERT_EQ(p.edges().size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    ASSERT_EQ(p.edges()[i].guard.size(), 1u);
    EXPECT_EQ(p.edges()[i].guard[0].bound,
              dbm::make_weak(static_cast<dbm::bound_t>(i + 1)));
  }
}

TEST(LangDiagnostics, ForRangeExplosionIsCapped) {
  // The iteration-count cap fires up front — even with an empty body,
  // and even when the bounds would overflow 32 bits — instead of
  // spinning through the range.
  for (const char* range : {"0..100000000", "0..1099511627776 * 8",
                            "-1099511627776..0"}) {
    std::vector<Diagnostic> diags;
    const auto model = compile(
        std::string("process P controlled {\n"
                    "  loc A; init A;\n"
                    "  for (i : ") + range + ") { }\n"
        "}\n",
        diags);
    SCOPED_TRACE(range);
    EXPECT_FALSE(model.has_value());
    const std::string& msg = first_error(diags).message;
    EXPECT_TRUE(msg.find("spans more than") != std::string::npos ||
                msg.find("32-bit") != std::string::npos)
        << msg;
  }
  // Stamping more edges than the per-process budget still errors even
  // when each individual range is small.
  std::vector<Diagnostic> diags;
  const auto model = compile(
      "process P controlled {\n"
      "  loc A; init A;\n"
      "  for (i : 0..32767) { edge A -> A; edge A -> A; edge A -> A; }\n"
      "}\n",
      diags);
  EXPECT_FALSE(model.has_value());
  EXPECT_NE(first_error(diags).message.find("stamps more than"),
            std::string::npos);
}

TEST(LangLoad, MissingFileThrowsLangError) {
  EXPECT_THROW(load_model("/nonexistent/model.tg"), LangError);
}

TEST(LangLoad, LoadFromStringRunsWholePipeline) {
  const LoadedModel model = load_model_from_string(kTiny, "tiny.tg");
  EXPECT_TRUE(model.system.finalized());
  EXPECT_EQ(model.purposes.size(), 1u);
  EXPECT_THROW(load_model_from_string("clock x; clock x;", "dup.tg"),
               LangError);
}

}  // namespace
}  // namespace tigat::lang
