// Unit tests for the simulated implementation, the SPEC monitor and
// the mutation operators.
#include <gtest/gtest.h>

#include "models/smart_light.h"
#include "testing/monitor.h"
#include "testing/mutants.h"
#include "testing/simulated_imp.h"

namespace tigat::testing {
namespace {

using models::make_smart_light;
using models::make_smart_light_plant_only;

constexpr std::int64_t kScale = 16;

TEST(SimulatedImp, QuiescentUntilStimulated) {
  models::SmartLight plant = make_smart_light_plant_only();
  SimulatedImplementation imp(plant.system, kScale);
  EXPECT_FALSE(imp.advance(100 * kScale).has_value());
  EXPECT_EQ(imp.state().locs[0], plant.loc_off);
}

TEST(SimulatedImp, UrgentOutputAfterTouch) {
  models::SmartLight plant = make_smart_light_plant_only();
  SimulatedImplementation imp(plant.system, kScale, ImpPolicy{0, {}});
  ASSERT_TRUE(imp.offer_input("touch"));
  EXPECT_EQ(imp.state().locs[0], plant.l1);  // x=0 < Tidle
  const auto out = imp.advance(10 * kScale);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->channel, "dim");
  EXPECT_EQ(out->after_ticks, 0);  // output urgency
  EXPECT_EQ(imp.state().locs[0], plant.loc_dim);
}

TEST(SimulatedImp, LatencyDelaysTheOutput) {
  models::SmartLight plant = make_smart_light_plant_only();
  SimulatedImplementation imp(plant.system, kScale,
                              ImpPolicy{3 * kScale / 2, {}});
  ASSERT_TRUE(imp.offer_input("touch"));
  const auto out = imp.advance(10 * kScale);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->channel, "dim");
  EXPECT_EQ(out->after_ticks, 3 * kScale / 2);  // 1.5 time units
}

TEST(SimulatedImp, LatencyClampedToWindow) {
  // Latency 5 units, window 2 units: fires at the deadline.
  models::SmartLight plant = make_smart_light_plant_only();
  SimulatedImplementation imp(plant.system, kScale,
                              ImpPolicy{5 * kScale, {}});
  ASSERT_TRUE(imp.offer_input("touch"));
  const auto out = imp.advance(10 * kScale);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->after_ticks, 2 * kScale);
}

TEST(SimulatedImp, PreferenceBreaksOutputChoice) {
  models::SmartLight plant = make_smart_light_plant_only();
  // Reach L5 (both dim! and bright! enabled): idle 20 units first.
  for (const std::string preferred : {"bright", "dim"}) {
    SimulatedImplementation imp(plant.system, kScale,
                                ImpPolicy{0, {preferred}});
    EXPECT_FALSE(imp.advance(20 * kScale).has_value());
    ASSERT_TRUE(imp.offer_input("touch"));
    EXPECT_EQ(imp.state().locs[0], plant.l5);
    const auto out = imp.advance(kScale);
    ASSERT_TRUE(out.has_value());
    EXPECT_EQ(out->channel, preferred);
  }
}

TEST(SimulatedImp, AdvanceSlicingIsInvariant) {
  // Many small advances must behave like one big one.
  models::SmartLight plant = make_smart_light_plant_only();
  SimulatedImplementation imp(plant.system, kScale, ImpPolicy{kScale, {}});
  ASSERT_TRUE(imp.offer_input("touch"));
  std::int64_t waited = 0;
  std::optional<ObservedOutput> out;
  while (!out && waited < 10 * kScale) {
    out = imp.advance(3);  // awkward slice size on purpose
    waited += 3;
  }
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->channel, "dim");
  // Fired one latency unit after the touch, regardless of slicing.
  EXPECT_LE(waited - 3, kScale);
  EXPECT_GE(waited, kScale);
}

TEST(SimulatedImp, AdvanceZeroFiresDueOutput) {
  models::SmartLight plant = make_smart_light_plant_only();
  SimulatedImplementation imp(plant.system, kScale, ImpPolicy{0, {}});
  ASSERT_TRUE(imp.offer_input("touch"));
  const auto out = imp.advance(0);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->channel, "dim");
}

TEST(SimulatedImp, ResetRestoresInitialState) {
  models::SmartLight plant = make_smart_light_plant_only();
  SimulatedImplementation imp(plant.system, kScale);
  imp.offer_input("touch");
  imp.advance(5 * kScale);
  imp.reset();
  EXPECT_EQ(imp.state().locs[0], plant.loc_off);
  EXPECT_EQ(imp.state().clocks[plant.x.id], 0);
}

TEST(SpecMonitor, TracksObservedTrace) {
  models::SmartLight spec = make_smart_light();
  SpecMonitor mon(spec.system, kScale);
  EXPECT_TRUE(mon.apply_delay(kScale));  // 1 unit: user may touch now
  EXPECT_TRUE(mon.apply_input("touch"));
  EXPECT_EQ(mon.state().locs[spec.iut], spec.l1);
  // Window: at most 2 units.
  EXPECT_EQ(mon.allowed_delay(), 2 * kScale);
  EXPECT_TRUE(mon.apply_delay(kScale));
  EXPECT_TRUE(mon.apply_output("dim"));
  EXPECT_EQ(mon.state().locs[spec.iut], spec.loc_dim);
}

TEST(SpecMonitor, RejectsDisallowedOutput) {
  models::SmartLight spec = make_smart_light();
  SpecMonitor mon(spec.system, kScale);
  // bright! is not possible from Off.
  EXPECT_FALSE(mon.apply_output("bright"));
  EXPECT_TRUE(mon.apply_delay(kScale));
  EXPECT_TRUE(mon.apply_input("touch"));
  // In L1 only dim! may occur (no bright! from L1).
  EXPECT_FALSE(mon.apply_output("bright"));
  EXPECT_TRUE(mon.apply_output("dim"));
}

TEST(SpecMonitor, RejectsOverlongDelay) {
  models::SmartLight spec = make_smart_light();
  SpecMonitor mon(spec.system, kScale);
  EXPECT_TRUE(mon.apply_delay(kScale));
  EXPECT_TRUE(mon.apply_input("touch"));
  EXPECT_FALSE(mon.apply_delay(3 * kScale));  // window is 2 units
}

TEST(Mutants, CloneIsStructurallyIdentical) {
  models::SmartLight plant = make_smart_light_plant_only();
  const tsystem::System copy = clone_system(plant.system);
  EXPECT_EQ(copy.clock_count(), plant.system.clock_count());
  EXPECT_EQ(copy.channels().size(), plant.system.channels().size());
  EXPECT_EQ(copy.processes().size(), plant.system.processes().size());
  EXPECT_EQ(copy.processes()[0].edges().size(),
            plant.system.processes()[0].edges().size());
  EXPECT_EQ(copy.max_constants(), plant.system.max_constants());
  EXPECT_EQ(copy.to_string(), plant.system.to_string());
}

TEST(Mutants, EnumerationCoversAllOperators) {
  models::SmartLight plant = make_smart_light_plant_only();
  const auto mutants = enumerate_mutants(plant.system);
  EXPECT_GT(mutants.size(), 50u);
  for (const MutationKind kind :
       {MutationKind::kGuardShift, MutationKind::kGuardFlip,
        MutationKind::kTargetSwap, MutationKind::kOutputSwap,
        MutationKind::kEdgeDrop, MutationKind::kResetDrop,
        MutationKind::kInvariantWiden}) {
    const bool present =
        std::any_of(mutants.begin(), mutants.end(),
                    [&](const auto& m) { return m.kind == kind; });
    EXPECT_TRUE(present) << to_string(kind);
  }
}

TEST(Mutants, ApplyProducesValidDifferentSystem) {
  models::SmartLight plant = make_smart_light_plant_only();
  const auto mutants = enumerate_mutants(plant.system);
  int different = 0;
  for (const auto& m : mutants) {
    const tsystem::System mutated = apply_mutant(plant.system, m);
    EXPECT_TRUE(mutated.finalized());
    if (mutated.to_string() != plant.system.to_string()) ++different;
  }
  // Every mutant must actually change the model text (drop changes the
  // edge list, shifts change guards, ...).
  EXPECT_EQ(different, static_cast<int>(mutants.size()));
}

}  // namespace
}  // namespace tigat::testing
