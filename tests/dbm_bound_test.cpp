// Unit tests for the packed bound encoding (dbm/bound.h).
#include "dbm/bound.h"

#include <gtest/gtest.h>

namespace tigat::dbm {
namespace {

TEST(Bound, EncodingRoundTrip) {
  for (bound_t v : {-7, -1, 0, 1, 5, 1024}) {
    EXPECT_EQ(bound_value(make_weak(v)), v);
    EXPECT_EQ(bound_value(make_strict(v)), v);
    EXPECT_EQ(strictness(make_weak(v)), Strict::kWeak);
    EXPECT_EQ(strictness(make_strict(v)), Strict::kStrict);
  }
}

TEST(Bound, OrderMatchesTightness) {
  // (c, <) is tighter than (c, ≤) is tighter than (c+1, <).
  EXPECT_LT(make_strict(3), make_weak(3));
  EXPECT_LT(make_weak(3), make_strict(4));
  EXPECT_LT(make_weak(-2), make_strict(0));
  EXPECT_LT(make_weak(123), kInfinity);
  EXPECT_LT(kLtZero, kLeZero);
  EXPECT_EQ(kLeZero, make_weak(0));
  EXPECT_EQ(kLtZero, make_strict(0));
}

TEST(Bound, AdditionAddsValuesAndStrictness) {
  EXPECT_EQ(add_bounds(make_weak(2), make_weak(3)), make_weak(5));
  EXPECT_EQ(add_bounds(make_weak(2), make_strict(3)), make_strict(5));
  EXPECT_EQ(add_bounds(make_strict(2), make_weak(3)), make_strict(5));
  EXPECT_EQ(add_bounds(make_strict(2), make_strict(3)), make_strict(5));
  EXPECT_EQ(add_bounds(make_weak(-4), make_weak(1)), make_weak(-3));
  EXPECT_EQ(add_bounds(make_strict(-4), make_weak(4)), make_strict(0));
}

TEST(Bound, AdditionSaturatesAtInfinity) {
  EXPECT_EQ(add_bounds(kInfinity, make_weak(5)), kInfinity);
  EXPECT_EQ(add_bounds(make_strict(-100), kInfinity), kInfinity);
  EXPECT_EQ(add_bounds(kInfinity, kInfinity), kInfinity);
}

TEST(Bound, NegationFlipsStrictness) {
  EXPECT_EQ(negate_bound(make_weak(5)), make_strict(-5));
  EXPECT_EQ(negate_bound(make_strict(5)), make_weak(-5));
  EXPECT_EQ(negate_bound(make_weak(0)), make_strict(0));
  // Involution.
  for (bound_t v : {-3, 0, 7}) {
    EXPECT_EQ(negate_bound(negate_bound(make_weak(v))), make_weak(v));
    EXPECT_EQ(negate_bound(negate_bound(make_strict(v))), make_strict(v));
  }
}

TEST(Bound, SatisfiesChecksStrictness) {
  // x − y ≤ 3 with scale 1.
  EXPECT_TRUE(satisfies(3, make_weak(3)));
  EXPECT_FALSE(satisfies(3, make_strict(3)));
  EXPECT_TRUE(satisfies(2, make_strict(3)));
  EXPECT_FALSE(satisfies(4, make_weak(3)));
  EXPECT_TRUE(satisfies(1 << 20, kInfinity));
}

TEST(Bound, SatisfiesAppliesScale) {
  // Model bound 3 at scale 1000: ticks up to 3000 satisfy ≤, not 3001.
  EXPECT_TRUE(satisfies(3000, make_weak(3), 1000));
  EXPECT_FALSE(satisfies(3001, make_weak(3), 1000));
  EXPECT_FALSE(satisfies(3000, make_strict(3), 1000));
  EXPECT_TRUE(satisfies(2999, make_strict(3), 1000));
  EXPECT_TRUE(satisfies(-3000, make_weak(-3), 1000));
  EXPECT_FALSE(satisfies(-2999, make_strict(-3), 1000));
}

TEST(Bound, ToString) {
  EXPECT_EQ(bound_to_string(make_weak(4)), "<=4");
  EXPECT_EQ(bound_to_string(make_strict(-2)), "<-2");
  EXPECT_EQ(bound_to_string(kInfinity), "<inf");
}

}  // namespace
}  // namespace tigat::dbm
