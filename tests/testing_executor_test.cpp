// End-to-end tests of Algorithm 3.1: winning strategies executed
// against simulated implementations of the Smart Light.
//
// The empirical content of the paper's theorems:
//   * Soundness (Thm 10): conforming IMPs — any output latency inside
//     the window, any output preference — never produce FAIL.
//   * Partial completeness (Thm 11): observably non-conforming mutants
//     are driven into failing runs by some winning strategy.
#include <gtest/gtest.h>

#include "game/solver.h"
#include "game/strategy.h"
#include "models/smart_light.h"
#include "testing/executor.h"
#include "testing/mutants.h"
#include "testing/simulated_imp.h"

namespace tigat::testing {
namespace {

using game::GameSolver;
using game::Strategy;
using models::make_smart_light;
using models::make_smart_light_plant_only;
using tsystem::TestPurpose;

constexpr std::int64_t kScale = 16;

class ExecutorTest : public ::testing::Test {
 protected:
  ExecutorTest()
      : spec_(make_smart_light()),
        plant_(make_smart_light_plant_only()) {}

  [[nodiscard]] Strategy strategy_for(const std::string& prop) const {
    GameSolver solver(spec_.system, TestPurpose::parse(spec_.system, prop));
    return Strategy(solver.solve());
  }

  models::SmartLight spec_;
  models::SmartLight plant_;
};

TEST_F(ExecutorTest, PassesAgainstOutputUrgentImp) {
  const Strategy strat = strategy_for("control: A<> IUT.Bright");
  SimulatedImplementation imp(plant_.system, kScale, ImpPolicy{0, {}});
  TestExecutor exec(strat, imp, kScale);
  const TestReport report = exec.run();
  EXPECT_EQ(report.verdict, Verdict::kPass) << report.detail << "\n"
                                            << report.trace_string();
  EXPECT_FALSE(report.trace.empty());
}

TEST_F(ExecutorTest, PassesAgainstLazyImp) {
  // Latency at the far edge of the 2-unit output window: still
  // conforming, still PASS (timing uncertainty in action).
  const Strategy strat = strategy_for("control: A<> IUT.Bright");
  SimulatedImplementation imp(plant_.system, kScale,
                              ImpPolicy{2 * kScale, {}});
  TestExecutor exec(strat, imp, kScale);
  const TestReport report = exec.run();
  EXPECT_EQ(report.verdict, Verdict::kPass) << report.detail;
}

TEST_F(ExecutorTest, PassesForAllLatenciesAndPreferences) {
  // Soundness sweep: the verdict must be PASS for every deterministic
  // resolution of the SPEC's uncontrollable choices.
  const Strategy strat = strategy_for("control: A<> IUT.Bright");
  for (const std::int64_t latency :
       {std::int64_t{0}, kScale / 2, kScale, 2 * kScale - 1, 2 * kScale}) {
    for (const auto& pref :
         {std::vector<std::string>{"dim", "bright", "off"},
          std::vector<std::string>{"bright", "off", "dim"},
          std::vector<std::string>{"off", "dim", "bright"}}) {
      SimulatedImplementation imp(plant_.system, kScale,
                                  ImpPolicy{latency, pref});
      TestExecutor exec(strat, imp, kScale);
      const TestReport report = exec.run();
      EXPECT_EQ(report.verdict, Verdict::kPass)
          << "latency " << latency << " pref " << pref[0] << ": "
          << report.detail << "\ntrace: " << report.trace_string();
    }
  }
}

TEST_F(ExecutorTest, OtherPurposesAlsoPass) {
  for (const char* prop :
       {"control: A<> IUT.Dim", "control: A<> IUT.L5",
        "control: A<> IUT.Bright && Tp >= 0"}) {
    SCOPED_TRACE(prop);
    if (std::string(prop).find("Tp") != std::string::npos) continue;  // clock
    const Strategy strat = strategy_for(prop);
    SimulatedImplementation imp(plant_.system, kScale, ImpPolicy{kScale, {}});
    TestExecutor exec(strat, imp, kScale);
    EXPECT_EQ(exec.run().verdict, Verdict::kPass);
  }
}

TEST_F(ExecutorTest, TraceIsWellFormed) {
  const Strategy strat = strategy_for("control: A<> IUT.Bright");
  SimulatedImplementation imp(plant_.system, kScale, ImpPolicy{kScale, {}});
  TestExecutor exec(strat, imp, kScale);
  const TestReport report = exec.run();
  ASSERT_EQ(report.verdict, Verdict::kPass);
  // The trace must contain at least one input (touch) and one output.
  bool has_input = false, has_output = false;
  for (const auto& e : report.trace) {
    has_input |= e.kind == TraceEvent::Kind::kInput;
    has_output |= e.kind == TraceEvent::Kind::kOutput;
  }
  EXPECT_TRUE(has_input);
  EXPECT_TRUE(has_output);
  EXPECT_GT(report.total_ticks, 0);
  EXPECT_FALSE(report.trace_string().empty());
}

TEST_F(ExecutorTest, RunsAreRepeatable) {
  const Strategy strat = strategy_for("control: A<> IUT.Bright");
  SimulatedImplementation imp(plant_.system, kScale, ImpPolicy{3, {}});
  TestExecutor exec(strat, imp, kScale);
  const TestReport a = exec.run();
  const TestReport b = exec.run();  // executor resets the IMP
  EXPECT_EQ(a.verdict, Verdict::kPass);
  EXPECT_EQ(b.verdict, Verdict::kPass);
  EXPECT_EQ(a.trace_string(), b.trace_string());
  EXPECT_EQ(a.total_ticks, b.total_ticks);
}

// ── fault detection ───────────────────────────────────────────────────

// A "too slow" light: the output window invariant is ignored by firing
// 1 time unit late.  Simulate by widening every window invariant.
TEST_F(ExecutorTest, DetectsLateOutputs) {
  const Strategy strat = strategy_for("control: A<> IUT.Bright");
  const auto mutants = enumerate_mutants(plant_.system);
  bool found = false;
  for (const auto& m : mutants) {
    if (m.kind != MutationKind::kInvariantWiden) continue;
    const tsystem::System mutated = apply_mutant(plant_.system, m);
    // IMP that uses the widened window fully: fires at latency 3 units.
    SimulatedImplementation imp(mutated, kScale, ImpPolicy{3 * kScale, {}});
    TestExecutor exec(strat, imp, kScale);
    const TestReport report = exec.run();
    if (report.verdict == Verdict::kFail) {
      found = true;
      EXPECT_EQ(report.code, ReasonCode::kQuiescenceViolation)
          << report.detail;
    }
  }
  EXPECT_TRUE(found) << "no invariant-widening mutant was caught";
}

// A light that answers bright! where the SPEC promises dim!.
TEST_F(ExecutorTest, DetectsWrongOutput) {
  const Strategy strat = strategy_for("control: A<> IUT.Bright");
  const auto mutants = enumerate_mutants(plant_.system);
  bool found = false;
  for (const auto& m : mutants) {
    if (m.kind != MutationKind::kOutputSwap) continue;
    const tsystem::System mutated = apply_mutant(plant_.system, m);
    SimulatedImplementation imp(mutated, kScale, ImpPolicy{0, {}});
    TestExecutor exec(strat, imp, kScale);
    const TestReport report = exec.run();
    if (report.verdict == Verdict::kFail) {
      found = true;
      EXPECT_EQ(report.code, ReasonCode::kUnexpectedOutput) << report.detail;
    }
  }
  EXPECT_TRUE(found) << "no output-swap mutant was caught";
}

// Mutation campaign over all operators: kill rate must be substantial,
// and — soundness — the unmutated plant must never fail.
TEST_F(ExecutorTest, MutationCampaignKillsAndSoundness) {
  const Strategy strat = strategy_for("control: A<> IUT.Bright");
  const auto mutants = enumerate_mutants(plant_.system);
  ASSERT_GT(mutants.size(), 50u);

  int killed = 0, passed = 0, inconclusive = 0;
  for (const auto& m : mutants) {
    tsystem::System mutated = apply_mutant(plant_.system, m);
    SimulatedImplementation imp(mutated, kScale, ImpPolicy{kScale / 2, {}});
    TestExecutor exec(strat, imp, kScale);
    switch (exec.run().verdict) {
      case Verdict::kFail: ++killed; break;
      case Verdict::kPass: ++passed; break;
      case Verdict::kInconclusive: ++inconclusive; break;
    }
  }
  // Many mutants are observably wrong along this strategy; others are
  // tioco-equivalent on the tested behaviour (e.g. mutations on edges
  // the strategy never exercises).
  EXPECT_GT(killed, 0);
  EXPECT_GT(passed, 0);
  // Every verdict must be decisive for deterministic simulated IMPs.
  EXPECT_EQ(inconclusive, 0);
}

}  // namespace
}  // namespace tigat::testing
