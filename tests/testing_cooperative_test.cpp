// Tests for cooperative test generation and execution (paper
// future-work item 4) and the rebuild utilities behind it.
#include <gtest/gtest.h>

#include "game/cooperative.h"
#include "game/solver.h"
#include "game/strategy.h"
#include "models/smart_light.h"
#include "testing/cooperative_executor.h"
#include "testing/mutants.h"
#include "testing/simulated_imp.h"
#include "tsystem/rebuild.h"

namespace tigat::testing {
namespace {

using game::GameSolver;
using game::Strategy;
using models::make_smart_light;
using models::make_smart_light_plant_only;
using tsystem::TestPurpose;

constexpr std::int64_t kScale = 16;

TEST(Rebuild, RelaxAllControllableFlipsThePartition) {
  models::SmartLight m = make_smart_light();
  const tsystem::System relaxed =
      tsystem::relax_all_controllable(m.system);
  for (const auto& p : relaxed.processes()) {
    for (const auto& e : p.edges()) {
      EXPECT_TRUE(relaxed.edge_controllable(p, e));
    }
  }
  // Structure preserved.
  EXPECT_EQ(relaxed.clock_count(), m.system.clock_count());
  EXPECT_EQ(relaxed.processes().size(), m.system.processes().size());
}

TEST(Cooperative, L6UnwinnableButCooperativelyReachable) {
  models::SmartLight m = make_smart_light();
  const auto purpose = TestPurpose::parse(m.system, "control: A<> IUT.L6");
  GameSolver strict(m.system, purpose);
  EXPECT_FALSE(strict.solve()->winning_from_initial());

  const auto coop = game::solve_cooperative(m.system, purpose);
  EXPECT_TRUE(coop.reachable);
}

TEST(Cooperative, WinnablePurposesStayWinnableUnderRelaxation) {
  // Relaxation only helps: every controllable purpose must remain
  // cooperatively reachable.
  models::SmartLight m = make_smart_light();
  for (const char* prop :
       {"control: A<> IUT.Bright", "control: A<> IUT.Dim"}) {
    const auto purpose = TestPurpose::parse(m.system, prop);
    GameSolver strict(m.system, purpose);
    ASSERT_TRUE(strict.solve()->winning_from_initial()) << prop;
    EXPECT_TRUE(game::solve_cooperative(m.system, purpose).reachable) << prop;
  }
}

TEST(Cooperative, PatientImpCooperatesToPass) {
  models::SmartLight spec = make_smart_light();
  models::SmartLight plant = make_smart_light_plant_only();
  const auto purpose = TestPurpose::parse(spec.system, "control: A<> IUT.L6");
  auto coop = game::solve_cooperative(spec.system, purpose);
  ASSERT_TRUE(coop.reachable);
  Strategy plan(coop.solution);

  SimulatedImplementation imp(plant.system, kScale,
                              ImpPolicy{2 * kScale, {}});
  CooperativeExecutor exec(spec.system, plan, imp, kScale);
  const TestReport report = exec.run();
  EXPECT_EQ(report.verdict, Verdict::kPass) << report.detail;
}

TEST(Cooperative, EagerImpYieldsInconclusiveNotFail) {
  models::SmartLight spec = make_smart_light();
  models::SmartLight plant = make_smart_light_plant_only();
  const auto purpose = TestPurpose::parse(spec.system, "control: A<> IUT.L6");
  auto coop = game::solve_cooperative(spec.system, purpose);
  Strategy plan(coop.solution);

  // Latency 0: the light answers the reactivating touch immediately —
  // legal behaviour that ruins the plan.  Must NOT be a fail.
  SimulatedImplementation imp(plant.system, kScale, ImpPolicy{0, {}});
  CooperativeExecutor exec(spec.system, plan, imp, kScale);
  const TestReport report = exec.run();
  EXPECT_EQ(report.verdict, Verdict::kInconclusive) << report.detail;
}

TEST(Cooperative, SoundnessStillFailsBrokenImp) {
  // Use a purpose whose cooperative plan has output obligations on the
  // path (A<> Bright hopes for bright!); lazy mutants with widened
  // windows then miss deadlines — a sound FAIL even in cooperative
  // mode.  (The L6 plan, by contrast, reaches its goal on inputs alone
  // and can never fail — a run is judged only by what is observed.)
  models::SmartLight spec = make_smart_light();
  models::SmartLight plant = make_smart_light_plant_only();
  const auto purpose =
      TestPurpose::parse(spec.system, "control: A<> IUT.Bright");
  auto coop = game::solve_cooperative(spec.system, purpose);
  ASSERT_TRUE(coop.reachable);
  Strategy plan(coop.solution);

  const auto mutants = enumerate_mutants(plant.system);
  bool found = false;
  for (const auto& m : mutants) {
    const tsystem::System mutated = apply_mutant(plant.system, m);
    SimulatedImplementation imp(mutated, kScale, ImpPolicy{3 * kScale, {}});
    CooperativeExecutor exec(spec.system, plan, imp, kScale);
    if (exec.run().verdict == Verdict::kFail) {
      found = true;
      break;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Cooperative, CooperativeExecutorOnWinnablePurposeAlsoPasses) {
  // A cooperative plan for a purpose that IS controllable behaves like
  // ordinary testing when the IMP happens to cooperate.
  models::SmartLight spec = make_smart_light();
  models::SmartLight plant = make_smart_light_plant_only();
  const auto purpose =
      TestPurpose::parse(spec.system, "control: A<> IUT.Dim");
  auto coop = game::solve_cooperative(spec.system, purpose);
  ASSERT_TRUE(coop.reachable);
  Strategy plan(coop.solution);
  SimulatedImplementation imp(plant.system, kScale, ImpPolicy{kScale, {}});
  CooperativeExecutor exec(spec.system, plan, imp, kScale);
  const TestReport report = exec.run();
  EXPECT_NE(report.verdict, Verdict::kFail) << report.detail;
}

}  // namespace
}  // namespace tigat::testing
