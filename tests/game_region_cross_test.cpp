// Cross-validation of the zone-based game solver against the
// independent region-graph solver (shared code: none below the model
// layer).  Any disagreement — on the initial verdict or on the winning
// status of any state visited by random runs — is a bug in one of the
// two solvers or in the Extra_M abstraction.
#include <gtest/gtest.h>

#include "game/region_solver.h"
#include "game/solver.h"
#include "semantics/concrete.h"
#include "util/rng.h"

namespace tigat::game {
namespace {

using semantics::ConcreteSemantics;
using semantics::ConcreteState;
using tsystem::Controllability;
using tsystem::LocId;
using tsystem::Process;
using tsystem::System;
using tsystem::TestPurpose;

constexpr dbm::bound_t kMaxConst = 3;

struct RandomGame {
  std::unique_ptr<System> sys;
  std::string purpose;
};

// A random diagonal-free TIOGA: one plant with uncontrollable outputs
// and controllable inputs, one always-cooperative clockless
// environment, constants ≤ 3, random invariants/guards/resets.
RandomGame random_game(util::Rng& rng, std::uint32_t clocks,
                       std::uint32_t locations, std::uint32_t edges) {
  auto sys = std::make_unique<System>("random");
  std::vector<tsystem::Clock> xs;
  for (std::uint32_t c = 0; c < clocks; ++c) {
    xs.push_back(sys->add_clock("x" + std::to_string(c)));
  }
  const auto in_a = sys->add_channel("a", Controllability::kControllable);
  const auto in_b = sys->add_channel("b", Controllability::kControllable);
  const auto out_u = sys->add_channel("u", Controllability::kUncontrollable);
  const auto out_v = sys->add_channel("v", Controllability::kUncontrollable);

  Process& plant = sys->add_process("P", Controllability::kUncontrollable);
  for (std::uint32_t l = 0; l < locations; ++l) {
    plant.add_location("L" + std::to_string(l));
  }
  // Random weak upper-bound invariants on some locations (weak only:
  // keeps forced-deadline semantics in play; strict invariants are
  // covered by the unit tests).
  for (std::uint32_t l = 0; l < locations; ++l) {
    if (rng.chance(1, 3)) {
      const auto x = xs[static_cast<std::size_t>(
          rng.range(0, static_cast<std::int64_t>(clocks) - 1))];
      plant.set_invariant(
          l, x <= static_cast<dbm::bound_t>(rng.range(1, kMaxConst)));
    }
  }
  for (std::uint32_t e = 0; e < edges; ++e) {
    const auto src = static_cast<LocId>(
        rng.range(0, static_cast<std::int64_t>(locations) - 1));
    const auto dst = static_cast<LocId>(
        rng.range(0, static_cast<std::int64_t>(locations) - 1));
    auto builder = plant.add_edge(src, dst);
    switch (rng.range(0, 3)) {
      case 0: builder.receive(in_a); break;
      case 1: builder.receive(in_b); break;
      case 2: builder.send(out_u); break;
      default: builder.send(out_v); break;
    }
    // Random guard: lower and/or upper bound on a random clock.
    const auto x = xs[static_cast<std::size_t>(
        rng.range(0, static_cast<std::int64_t>(clocks) - 1))];
    if (rng.chance(1, 2)) {
      const auto c = static_cast<dbm::bound_t>(rng.range(0, kMaxConst));
      if (rng.chance(1, 2)) {
        builder.guard(x >= c);
      } else {
        builder.guard(x > c);
      }
    }
    if (rng.chance(1, 2)) {
      const auto c = static_cast<dbm::bound_t>(rng.range(1, kMaxConst));
      if (rng.chance(1, 2)) {
        builder.guard(x <= c);
      } else {
        builder.guard(x < c);
      }
    }
    if (rng.chance(1, 2)) {
      builder.reset(xs[static_cast<std::size_t>(
          rng.range(0, static_cast<std::int64_t>(clocks) - 1))]);
    }
  }

  // Clockless cooperative environment.
  Process& env = sys->add_process("E", Controllability::kControllable);
  const LocId e0 = env.add_location("E0");
  env.add_edge(e0, e0).send(in_a);
  env.add_edge(e0, e0).send(in_b);
  env.add_edge(e0, e0).receive(out_u);
  env.add_edge(e0, e0).receive(out_v);
  sys->finalize();

  const auto goal = rng.range(1, static_cast<std::int64_t>(locations) - 1);
  return {std::move(sys), "control: A<> P.L" + std::to_string(goal)};
}

class CrossTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CrossTest, ZoneAndRegionSolversAgree) {
  util::Rng rng(GetParam());
  int nontrivial = 0;
  for (int iter = 0; iter < 20; ++iter) {
    const std::uint32_t clocks = rng.chance(1, 2) ? 1 : 2;
    RandomGame game =
        random_game(rng, clocks, static_cast<std::uint32_t>(rng.range(3, 4)),
                    static_cast<std::uint32_t>(rng.range(4, 9)));
    const TestPurpose purpose = TestPurpose::parse(*game.sys, game.purpose);

    GameSolver zone_solver(*game.sys, purpose);
    const auto zone = zone_solver.solve();

    RegionGameSolver region_solver(*game.sys, purpose);
    region_solver.solve();

    ASSERT_EQ(zone->winning_from_initial(), region_solver.winning_from_initial())
        << "seed " << GetParam() << " iter " << iter << "\n"
        << game.sys->to_string() << "\npurpose: " << game.purpose;
    if (zone->winning_from_initial()) ++nontrivial;

    // Compare membership along random concrete runs (scale 12 so the
    // region representative fractions are exactly expressible).
    ConcreteSemantics sem(*game.sys, 12);
    for (int run = 0; run < 8; ++run) {
      ConcreteState s = sem.initial();
      for (int step = 0; step < 12; ++step) {
        const auto key =
            zone->graph().find_key({s.locs, s.data});
        ASSERT_TRUE(key.has_value());
        const bool zone_win = zone->rank(*key, s.clocks, 12).has_value();
        const bool region_win = region_solver.state_winning(s, 12);
        ASSERT_EQ(zone_win, region_win)
            << "seed " << GetParam() << " iter " << iter << " at "
            << sem.to_string(s) << "\n"
            << game.sys->to_string() << "\npurpose: " << game.purpose;

        const std::int64_t md = sem.max_delay(s);
        sem.delay(s, rng.range(0, std::min<std::int64_t>(md, 5 * 12)));
        const auto actions = sem.enabled_instances(s);
        if (actions.empty()) {
          if (sem.max_delay(s) == 0) break;
          continue;
        }
        sem.fire(s, actions[static_cast<std::size_t>(rng.range(
                        0, static_cast<std::int64_t>(actions.size()) - 1))]);
      }
    }
  }
  // Distribution sanity: not every random game should be winnable
  // (deterministically winnable games are covered by game_solver_test;
  // a zero-winnable batch is possible and fine for a single seed).
  EXPECT_LT(nontrivial, 20) << "all games winnable";
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrossTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

}  // namespace
}  // namespace tigat::game
