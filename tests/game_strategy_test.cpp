// Focused tests for strategy extraction: rank structure, move
// decisions along a winning play, decision-point computation, and the
// strategy-execution progress argument (ranks strictly decrease).
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "game/solver.h"
#include "game/strategy.h"
#include "models/smart_light.h"
#include "semantics/concrete.h"

namespace tigat::game {
namespace {

using models::SmartLight;
using tsystem::TestPurpose;

constexpr std::int64_t kScale = 16;

class StrategyTest : public ::testing::Test {
 protected:
  StrategyTest()
      : light_(models::make_smart_light()),
        solution_(GameSolver(light_.system,
                             TestPurpose::parse(light_.system,
                                                "control: A<> IUT.Bright"))
                      .solve()),
        strategy_(solution_),
        sem_(light_.system, kScale) {}

  SmartLight light_;
  std::shared_ptr<const GameSolution> solution_;
  Strategy strategy_;
  semantics::ConcreteSemantics sem_;
};

TEST_F(StrategyTest, RanksArePerRoundDeltas) {
  const auto& g = solution_->graph();
  for (std::uint32_t k = 0; k < g.key_count(); ++k) {
    std::uint32_t prev = 0;
    bool first = true;
    for (const auto& d : solution_->deltas(k)) {
      EXPECT_FALSE(d.gained.is_empty());
      if (!first) {
        EXPECT_GT(d.round, prev);
      }
      prev = d.round;
      first = false;
    }
    // Goal keys have a round-0 delta covering all of reach.
    if (solution_->goal_key(k)) {
      ASSERT_FALSE(solution_->deltas(k).empty());
      EXPECT_EQ(solution_->deltas(k).front().round, 0u);
      EXPECT_TRUE(g.reach(k).is_subset_of(solution_->winning(k)));
    }
  }
}

TEST_F(StrategyTest, WinningUpToIsMonotone) {
  const auto& g = solution_->graph();
  for (std::uint32_t k = 0; k < g.key_count(); ++k) {
    const auto lo = solution_->winning_up_to(k, 1);
    const auto hi = solution_->winning_up_to(k, 1000);
    EXPECT_TRUE(lo.is_subset_of(hi));
    EXPECT_TRUE(hi.same_set_as(solution_->winning(k)));
  }
}

TEST_F(StrategyTest, DecisionPointMatchesUserReactionTime) {
  auto s = sem_.initial();
  const Move m0 = strategy_.decide(s, kScale);
  ASSERT_EQ(m0.kind, MoveKind::kDelay);
  // The user may touch at z >= Treact = 1 → 16 ticks.
  EXPECT_EQ(m0.next_decision_ticks, kScale);
  sem_.delay(s, m0.next_decision_ticks);
  const Move m1 = strategy_.decide(s, kScale);
  EXPECT_EQ(m1.kind, MoveKind::kAction);
}

TEST_F(StrategyTest, PlayedStrategyRanksStrictlyDecrease) {
  // Drive the SPEC with the strategy itself (resolving uncontrollable
  // choices adversarially: always pick the first enabled output) and
  // check that the rank never increases and strictly decreases at
  // every discrete step — the termination argument of Algorithm 3.1.
  auto s = sem_.initial();
  Move move = strategy_.decide(s, kScale);
  ASSERT_TRUE(move.rank.has_value());
  std::uint32_t rank = *move.rank;
  int steps = 0;
  while (move.kind != MoveKind::kGoalReached && steps++ < 60) {
    if (move.kind == MoveKind::kAction) {
      const auto& e = solution_->graph().edges()[*move.edge];
      ASSERT_TRUE(sem_.enabled(s, e.inst));
      sem_.fire(s, e.inst);
    } else {
      ASSERT_EQ(move.kind, MoveKind::kDelay);
      std::int64_t wait = move.next_decision_ticks;
      const std::int64_t deadline = sem_.max_delay(s);
      wait = std::min(wait, deadline);
      ASSERT_GT(wait, 0);
      sem_.delay(s, wait);
      if (wait == deadline && deadline < sem_.kNoDeadline) {
        // Opponent forced: fire the first enabled uncontrollable edge.
        bool fired = false;
        for (const auto& t : sem_.enabled_instances(s)) {
          if (!t.controllable) {
            sem_.fire(s, t);
            fired = true;
            break;
          }
        }
        ASSERT_TRUE(fired) << "deadline with nothing to fire";
      }
    }
    move = strategy_.decide(s, kScale);
    ASSERT_TRUE(move.rank.has_value()) << sem_.to_string(s);
    EXPECT_LE(*move.rank, rank) << sem_.to_string(s);
    rank = *move.rank;
  }
  EXPECT_EQ(move.kind, MoveKind::kGoalReached);
}

TEST_F(StrategyTest, UnreachableStateIsUnwinnable) {
  auto s = sem_.initial();
  // Fabricate a discretely unreachable situation: user in Work while
  // the light never left Off with all clocks at zero is reachable...
  // instead use clocks violating the reach zones: x != z before any
  // action is impossible.
  s.clocks[light_.x.id] = 5;
  s.clocks[light_.z.id] = 3;
  const Move m = strategy_.decide(s, kScale);
  EXPECT_EQ(m.kind, MoveKind::kUnwinnable);
  EXPECT_FALSE(m.rank.has_value());
}

TEST_F(StrategyTest, StrategyPrintingIsStable) {
  const std::string a = strategy_.to_string();
  const std::string b = strategy_.to_string();
  EXPECT_EQ(a, b);
  EXPECT_GT(strategy_.size(), 0u);
}

TEST_F(StrategyTest, DecideIsSafeForConcurrentCallers) {
  // One strategy, many parallel executions (the campaign-service
  // shape): every thread starts on a COLD action-region cache and
  // decides the same states; all must agree with a serial baseline.
  // Run under TSan in CI (game_ filter) to catch cache races.
  std::vector<semantics::ConcreteState> states;
  auto s = sem_.initial();
  states.push_back(s);
  for (int step = 0; step < 6; ++step) {
    sem_.delay(s, kScale / 2);
    states.push_back(s);
  }
  std::vector<Move> baseline;
  for (const auto& state : states) {
    baseline.push_back(strategy_.decide(state, kScale));
  }

  // A freshly solved game: cold action-region cache for the race
  // window (the cache lives on the GameSolution and solution_ is
  // already warm from the baseline above).
  Strategy fresh(GameSolver(light_.system,
                            TestPurpose::parse(light_.system,
                                               "control: A<> IUT.Bright"))
                     .solve());
  constexpr int kThreads = 8;
  std::vector<std::vector<Move>> results(kThreads);
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int rep = 0; rep < 50; ++rep) {
        for (const auto& state : states) {
          const Move m = fresh.decide(state, kScale);
          if (rep == 0) results[t].push_back(m);
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();
  for (int t = 0; t < kThreads; ++t) {
    ASSERT_EQ(results[t].size(), baseline.size());
    for (std::size_t i = 0; i < baseline.size(); ++i) {
      EXPECT_EQ(results[t][i], baseline[i]) << "thread " << t << " state " << i;
    }
  }
}

TEST_F(StrategyTest, SolverStatsPopulated) {
  const auto& st = solution_->stats();
  EXPECT_GT(st.keys, 0u);
  EXPECT_GT(st.reach_zones, 0u);
  EXPECT_GT(st.edges, st.keys);
  EXPECT_GT(st.rounds, 0u);
  EXPECT_GT(st.winning_zones, 0u);
  EXPECT_GT(st.peak_zone_bytes, 0u);
}

}  // namespace
}  // namespace tigat::game
