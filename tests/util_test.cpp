// Tests for the util module: text helpers, tables, rng, memory meter.
#include <gtest/gtest.h>

#include <set>

#include "util/memory_meter.h"
#include "util/rng.h"
#include "util/stopwatch.h"
#include "util/table_printer.h"
#include "util/text.h"

namespace tigat::util {
namespace {

TEST(Text, JoinAndSplit) {
  EXPECT_EQ(join({}, ", "), "");
  EXPECT_EQ(join({"a"}, ", "), "a");
  EXPECT_EQ(join({"a", "b", "c"}, " && "), "a && b && c");
  EXPECT_EQ(split("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
}

TEST(Text, Trim) {
  EXPECT_EQ(trim("  hello \t\n"), "hello");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim(" \t "), "");
  EXPECT_EQ(trim("x"), "x");
}

TEST(Text, StartsWith) {
  EXPECT_TRUE(starts_with("control: A<> p", "control:"));
  EXPECT_FALSE(starts_with("ctl", "control:"));
  EXPECT_TRUE(starts_with("abc", ""));
}

TEST(Text, Format) {
  EXPECT_EQ(format("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(format("%.2f", 1.234), "1.23");
  EXPECT_EQ(format("empty"), "empty");
}

TEST(TablePrinter, AlignsColumns) {
  TablePrinter t({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"long-name", "12345"});
  const std::string s = t.to_string();
  // Header, separator, two rows.
  EXPECT_EQ(split(s, '\n').size(), 5u);  // + trailing empty
  EXPECT_NE(s.find("long-name"), std::string::npos);
  EXPECT_NE(s.find("12345"), std::string::npos);
}

TEST(Rng, DeterministicPerSeed) {
  Rng a(7), b(7), c(8);
  EXPECT_EQ(a.next(), b.next());
  EXPECT_NE(a.next(), c.next());
}

TEST(Rng, RangeIsInclusiveAndCovers) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 400; ++i) {
    const auto v = rng.range(-2, 3);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 6u);  // all values hit
}

TEST(Rng, Uniform01InRange) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(MemoryMeter, TracksCurrentAndPeak) {
  MemoryMeter m;
  m.add(100);
  m.add(50);
  EXPECT_EQ(m.current(), 150u);
  EXPECT_EQ(m.peak(), 150u);
  m.sub(120);
  EXPECT_EQ(m.current(), 30u);
  EXPECT_EQ(m.peak(), 150u);
  m.add(10);
  EXPECT_EQ(m.peak(), 150u);  // peak unchanged below high-water
  m.reset_peak();
  EXPECT_EQ(m.peak(), 40u);
  m.reset();
  EXPECT_EQ(m.current(), 0u);
  EXPECT_EQ(m.peak(), 0u);
}

TEST(MemoryMeter, SubClampsAtZero) {
  MemoryMeter m;
  m.add(5);
  m.sub(50);
  EXPECT_EQ(m.current(), 0u);
}

TEST(MemoryMeter, MebibyteConversion) {
  EXPECT_DOUBLE_EQ(to_mebibytes(1 << 20), 1.0);
  EXPECT_DOUBLE_EQ(to_mebibytes(0), 0.0);
}

TEST(Stopwatch, MeasuresElapsedTime) {
  Stopwatch w;
  // Just sanity: non-negative and monotone.
  const double a = w.seconds();
  const double b = w.seconds();
  EXPECT_GE(a, 0.0);
  EXPECT_GE(b, a);
  w.restart();
  EXPECT_GE(w.seconds(), 0.0);
}

}  // namespace
}  // namespace tigat::util
