// Tests for the symbolic zone-graph explorer, including the
// concrete-vs-symbolic cross-validation: every state visited by random
// concrete runs must lie inside the symbolic reach set.
#include <gtest/gtest.h>

#include "models/smart_light.h"
#include "semantics/concrete.h"
#include "semantics/symbolic.h"
#include "util/rng.h"

namespace tigat::semantics {
namespace {

using models::SmartLight;
using models::make_smart_light;

TEST(Symbolic, ExploresSmartLightToFixpoint) {
  SmartLight m = make_smart_light();
  SymbolicGraph g(m.system);
  g.explore();
  const auto stats = g.stats();
  EXPECT_GT(stats.keys, 5u);
  EXPECT_GT(stats.edges, stats.keys);  // touch loops etc.
  EXPECT_LT(stats.keys, 40u);          // 9 plant × 2 user locations max
  // Every plant location is discrete-reachable.
  std::vector<bool> seen(9, false);
  for (std::uint32_t k = 0; k < g.key_count(); ++k) {
    seen[g.key(k).locs[m.iut]] = true;
  }
  for (std::size_t l = 0; l < seen.size(); ++l) {
    EXPECT_TRUE(seen[l]) << "plant location " << l << " unreachable";
  }
}

TEST(Symbolic, InitialZoneIsDelayClosed) {
  SmartLight m = make_smart_light();
  SymbolicGraph g(m.system);
  g.explore();
  const auto& f = g.reach(g.initial_key());
  // (Off, Init) has no invariant: any uniform valuation is reachable.
  EXPECT_TRUE(f.contains_point({0, 0, 0, 0}));
  EXPECT_TRUE(f.contains_point({0, 55, 55, 55}));
  // Clock differences stay zero until an action occurs.
  EXPECT_FALSE(f.contains_point({0, 5, 5, 3}));
}

TEST(Symbolic, InvariantCachedPerKey) {
  SmartLight m = make_smart_light();
  SymbolicGraph g(m.system);
  g.explore();
  bool found_window = false;
  for (std::uint32_t k = 0; k < g.key_count(); ++k) {
    const auto plant_loc = g.key(k).locs[m.iut];
    if (plant_loc == m.l5) {
      found_window = true;
      // Tp ≤ 2 present in the invariant zone.
      EXPECT_FALSE(g.invariant(k).contains_point({0, 0, 3, 0}));
      EXPECT_TRUE(g.invariant(k).contains_point({0, 0, 2, 0}));
    }
  }
  EXPECT_TRUE(found_window);
}

TEST(Symbolic, EdgesCarryControllability) {
  SmartLight m = make_smart_light();
  SymbolicGraph g(m.system);
  g.explore();
  bool saw_controllable = false, saw_uncontrollable = false;
  for (const SymbolicEdge& e : g.edges()) {
    if (e.inst.controllable) saw_controllable = true;
    if (!e.inst.controllable) saw_uncontrollable = true;
  }
  EXPECT_TRUE(saw_controllable);
  EXPECT_TRUE(saw_uncontrollable);
}

TEST(Symbolic, PredThroughInvertsApply) {
  SmartLight m = make_smart_light();
  SymbolicGraph g(m.system);
  g.explore();
  // For every edge: forward image of reach(src) through the edge lies
  // in reach(dst) (before delay closure it's contained anyway), and
  // pred_through(image) recovers at least the guard-satisfying part of
  // the source zone.
  int checked = 0;
  for (const SymbolicEdge& e : g.edges()) {
    const auto& src_fed = g.reach(e.src);
    for (const dbm::Dbm& z : src_fed.zones()) {
      auto fwd = g.apply(e.src, z, e.inst);
      if (!fwd) continue;
      // Forward states are reachable.
      dbm::Fed img(fwd->second);
      EXPECT_TRUE(img.is_subset_of(g.reach(e.dst)))
          << "edge " << e.inst.label(m.system);
      ++checked;
    }
  }
  EXPECT_GT(checked, 10);
}

TEST(Symbolic, RandomConcreteRunsStayInsideReach) {
  SmartLight m = make_smart_light();
  SymbolicGraph g(m.system);
  g.explore();
  ConcreteSemantics sem(m.system, /*scale=*/4);
  util::Rng rng(2024);

  for (int run = 0; run < 60; ++run) {
    ConcreteState s = sem.initial();
    for (int step = 0; step < 25; ++step) {
      // Random small delay within what invariants allow.
      const std::int64_t md = sem.max_delay(s);
      const std::int64_t cap = std::min<std::int64_t>(md, 30 * 4);
      const std::int64_t d = rng.range(0, cap);
      sem.delay(s, d);
      // Locate the symbolic key and check zone membership.
      DiscreteKey key{s.locs, s.data};
      const auto k = g.find_key(key);
      ASSERT_TRUE(k.has_value()) << sem.to_string(s);
      EXPECT_TRUE(g.reach(*k).contains_point(s.clocks, sem.scale()))
          << sem.to_string(s);
      // Random enabled action, if any; otherwise force a delay.
      const auto actions = sem.enabled_instances(s);
      if (actions.empty()) {
        if (sem.max_delay(s) == 0) break;  // deadlock (should not happen)
        continue;
      }
      sem.fire(s, actions[static_cast<std::size_t>(
                      rng.range(0, static_cast<std::int64_t>(actions.size()) -
                                       1))]);
    }
  }
}

TEST(Symbolic, ExplorationLimitThrows) {
  SmartLight m = make_smart_light();
  ExplorationOptions opt;
  opt.max_zones = 3;
  SymbolicGraph g(m.system, opt);
  EXPECT_THROW(g.explore(), ExplorationLimit);
}

// A one-location loop firing at y == 1 and resetting y pumps the
// difference x − y by one forever: the zones x − y = k are pairwise
// incomparable, so exploration diverges unless Extra_M abstracts the
// difference away.
tsystem::System difference_pump() {
  tsystem::System sys("pump");
  const auto x = sys.add_clock("x");
  const auto y = sys.add_clock("y");
  (void)x;
  tsystem::Process& p =
      sys.add_process("P", tsystem::Controllability::kControllable);
  const auto a = p.add_location("A");
  p.add_edge(a, a).guard({y >= 1, y <= 1}).reset(y);
  sys.finalize();
  return sys;
}

TEST(Symbolic, WithoutExtrapolationDifferencePumpDiverges) {
  tsystem::System sys = difference_pump();
  ExplorationOptions opt;
  opt.extrapolate = false;
  opt.max_zones = 500;
  SymbolicGraph g(sys, opt);
  EXPECT_THROW(g.explore(), ExplorationLimit);
}

TEST(Symbolic, ExtrapolationMakesDifferencePumpFinite) {
  tsystem::System sys = difference_pump();
  SymbolicGraph g(sys);
  g.explore();
  EXPECT_LT(g.stats().zones, 20u);
  EXPECT_EQ(g.key_count(), 1u);
}

TEST(Symbolic, UrgentLocationFreezesTime) {
  tsystem::System sys("urgent");
  const auto x = sys.add_clock("x");
  tsystem::Process& p =
      sys.add_process("P", tsystem::Controllability::kControllable);
  const auto a = p.add_location("A");
  const auto u = p.add_location("U", tsystem::LocationKind::kUrgent);
  p.add_edge(a, u).guard(x >= 1);
  p.add_edge(u, a).reset(x);
  sys.finalize();

  SymbolicGraph g(sys);
  g.explore();
  for (std::uint32_t k = 0; k < g.key_count(); ++k) {
    if (g.key(k).locs[0] == u) {
      // Zone in U is not delay-closed: x must equal its entry value
      // pattern x ≥ 1 with no up() applied — the zone x ≥ 1 would be
      // closed upward anyway; the distinguishing fact is that U admits
      // zero max delay in the concrete semantics, checked below.
      ConcreteSemantics sem(sys, 2);
      ConcreteState s = sem.initial();
      sem.delay(s, 2);
      sem.fire(s, sem.enabled_instances(s).at(0));
      EXPECT_EQ(s.locs[0], u);
      EXPECT_EQ(sem.max_delay(s), 0);
    }
  }
}

}  // namespace
}  // namespace tigat::semantics
