// Unit tests for the Dbm class: construction, canonicalisation and the
// classical zone operators on hand-checked examples.
#include "dbm/dbm.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace tigat::dbm {
namespace {

// Convenience: zone over clocks {0, x=1, y=2}.
Dbm box_xy(bound_t x_lo, bound_t x_hi, bound_t y_lo, bound_t y_hi) {
  Dbm z = Dbm::universal(3);
  EXPECT_TRUE(z.constrain(1, 0, make_weak(x_hi)));
  EXPECT_TRUE(z.constrain(0, 1, make_weak(-x_lo)));
  EXPECT_TRUE(z.constrain(2, 0, make_weak(y_hi)));
  EXPECT_TRUE(z.constrain(0, 2, make_weak(-y_lo)));
  return z;
}

std::vector<std::int64_t> pt(std::int64_t x, std::int64_t y) {
  return {0, x, y};
}

TEST(Dbm, ZeroContainsOnlyOrigin) {
  const Dbm z = Dbm::zero(3);
  EXPECT_FALSE(z.is_empty());
  EXPECT_TRUE(z.contains_point(pt(0, 0)));
  EXPECT_FALSE(z.contains_point(pt(1, 0)));
  EXPECT_FALSE(z.contains_point(pt(0, 2)));
}

TEST(Dbm, UniversalContainsEverything) {
  const Dbm z = Dbm::universal(3);
  EXPECT_TRUE(z.contains_point(pt(0, 0)));
  EXPECT_TRUE(z.contains_point(pt(1000, 3)));
}

TEST(Dbm, ConstrainBuildsBox) {
  const Dbm z = box_xy(1, 4, 2, 3);
  EXPECT_TRUE(z.contains_point(pt(1, 2)));
  EXPECT_TRUE(z.contains_point(pt(4, 3)));
  EXPECT_TRUE(z.contains_point(pt(2, 2)));
  EXPECT_FALSE(z.contains_point(pt(0, 2)));
  EXPECT_FALSE(z.contains_point(pt(5, 2)));
  EXPECT_FALSE(z.contains_point(pt(2, 4)));
}

TEST(Dbm, ConstrainDetectsEmptiness) {
  Dbm z = Dbm::universal(2);
  EXPECT_TRUE(z.constrain(1, 0, make_weak(3)));   // x ≤ 3
  EXPECT_FALSE(z.constrain(0, 1, make_strict(-3)));  // x > 3 → empty
  EXPECT_TRUE(z.is_empty());
}

TEST(Dbm, StrictBoundaryExcluded) {
  Dbm z = Dbm::universal(2);
  ASSERT_TRUE(z.constrain(1, 0, make_strict(3)));  // x < 3
  EXPECT_TRUE(z.contains_point({0, 2}));
  EXPECT_FALSE(z.contains_point({0, 3}));
  // Scaled membership: 2.5 at scale 2 is 5 ticks.
  EXPECT_TRUE(z.contains_point({0, 5}, 2));
  EXPECT_FALSE(z.contains_point({0, 6}, 2));
}

TEST(Dbm, CloseComputesTightestDifferences) {
  // x ≤ 4, y ≥ 2 gives x − y ≤ 2 after closure.
  Dbm z = Dbm::universal(3);
  z.set_raw(1, 0, make_weak(4));
  z.set_raw(0, 2, make_weak(-2));
  ASSERT_TRUE(z.close());
  EXPECT_EQ(z.at(1, 2), make_weak(2));
}

TEST(Dbm, CloseDetectsNegativeCycle) {
  // x − y ≤ −1 together with y − x ≤ 0 is unsatisfiable.
  Dbm z = Dbm::universal(3);
  z.set_raw(1, 2, make_weak(-1));
  z.set_raw(2, 1, make_weak(0));
  EXPECT_FALSE(z.close());
  EXPECT_TRUE(z.is_empty());
}

TEST(Dbm, UpRemovesUpperBoundsKeepsDifferences) {
  Dbm z = box_xy(1, 2, 1, 2);
  z.up();
  EXPECT_TRUE(z.contains_point(pt(100, 100)));
  EXPECT_TRUE(z.contains_point(pt(100, 99)));   // |x−y| ≤ 1 preserved
  EXPECT_FALSE(z.contains_point(pt(100, 50)));  // difference violated
  EXPECT_FALSE(z.contains_point(pt(0, 0)));     // lower bounds kept
}

TEST(Dbm, DownRelaxesLowerBounds) {
  // Point (5, 10): past is the diagonal segment hitting x = 0 at y = 5.
  Dbm z = box_xy(5, 5, 10, 10);
  z.down();
  EXPECT_TRUE(z.contains_point(pt(5, 10)));
  EXPECT_TRUE(z.contains_point(pt(0, 5)));
  EXPECT_TRUE(z.contains_point(pt(3, 8)));
  EXPECT_FALSE(z.contains_point(pt(0, 4)));  // would need x = −1
  EXPECT_FALSE(z.contains_point(pt(6, 11)));
  EXPECT_FALSE(z.contains_point(pt(3, 7)));  // off the diagonal
  // Result must be canonical: y − x = 5 exactly.
  EXPECT_EQ(z.at(2, 1), make_weak(5));
  EXPECT_EQ(z.at(1, 2), make_weak(-5));
  EXPECT_EQ(z.at(0, 2), make_weak(-5));  // y ≥ 5
}

TEST(Dbm, ResetPinsClockAndKeepsOthers) {
  Dbm z = box_xy(1, 4, 2, 3);
  z.reset(1);  // x := 0
  EXPECT_TRUE(z.contains_point(pt(0, 2)));
  EXPECT_TRUE(z.contains_point(pt(0, 3)));
  EXPECT_FALSE(z.contains_point(pt(0, 1)));
  EXPECT_FALSE(z.contains_point(pt(1, 2)));
}

TEST(Dbm, ResetToValue) {
  Dbm z = box_xy(1, 4, 2, 3);
  z.reset(1, 7);  // x := 7
  EXPECT_TRUE(z.contains_point(pt(7, 2)));
  EXPECT_FALSE(z.contains_point(pt(7, 4)));
  EXPECT_FALSE(z.contains_point(pt(6, 2)));
}

TEST(Dbm, FreeRemovesAllConstraintsOnClock) {
  Dbm z = box_xy(1, 4, 2, 3);
  z.free(1);
  EXPECT_TRUE(z.contains_point(pt(0, 2)));
  EXPECT_TRUE(z.contains_point(pt(555, 3)));
  EXPECT_FALSE(z.contains_point(pt(2, 1)));  // y still bounded
}

TEST(Dbm, IntersectWith) {
  Dbm a = box_xy(0, 5, 0, 5);
  const Dbm b = box_xy(3, 8, 1, 2);
  ASSERT_TRUE(a.intersect_with(b));
  EXPECT_TRUE(a.contains_point(pt(3, 1)));
  EXPECT_TRUE(a.contains_point(pt(5, 2)));
  EXPECT_FALSE(a.contains_point(pt(6, 1)));
  EXPECT_FALSE(a.contains_point(pt(3, 3)));

  const Dbm c = box_xy(9, 10, 0, 1);
  EXPECT_FALSE(a.intersect_with(c));
  EXPECT_TRUE(a.is_empty());
}

TEST(Dbm, RelationOnNestedBoxes) {
  const Dbm small = box_xy(2, 3, 2, 3);
  const Dbm big = box_xy(0, 5, 0, 5);
  EXPECT_EQ(small.relation(big), Relation::kSubset);
  EXPECT_EQ(big.relation(small), Relation::kSuperset);
  EXPECT_EQ(big.relation(big), Relation::kEqual);
  const Dbm other = box_xy(4, 9, 0, 5);
  EXPECT_EQ(small.relation(other), Relation::kDifferent);
  EXPECT_TRUE(small.is_subset_of(big));
  EXPECT_FALSE(big.is_subset_of(small));
}

TEST(Dbm, EarliestEntryDelay) {
  const Dbm z = box_xy(5, 8, 0, 100);
  // From (2, 1): x reaches 5 after 3 time units.
  EXPECT_EQ(z.earliest_entry_delay(pt(2, 1)), 3);
  // Already inside.
  EXPECT_EQ(z.earliest_entry_delay(pt(6, 0)), 0);
  // Beyond: never re-enters.
  EXPECT_FALSE(z.earliest_entry_delay(pt(9, 0)).has_value());
}

TEST(Dbm, EarliestEntryDelayStrictBound) {
  Dbm z = Dbm::universal(2);
  ASSERT_TRUE(z.constrain(0, 1, make_strict(-5)));  // x > 5
  const std::vector<std::int64_t> origin = {0, 0};
  EXPECT_EQ(z.earliest_entry_delay(origin), 6);
  // At scale 10 (0.1-unit ticks) entry is at 5.1 units = 51 ticks.
  EXPECT_EQ(z.earliest_entry_delay(origin, 10), 51);
}

TEST(Dbm, EarliestEntryDelayRespectsDifferences) {
  // x − y ≥ 3 can never be reached by delaying (differences frozen).
  Dbm z = Dbm::universal(3);
  ASSERT_TRUE(z.constrain(0, 1, make_weak(0)));
  ASSERT_TRUE(z.constrain(2, 1, make_weak(-3)));  // y − x ≤ −3 i.e. x ≥ y+3
  EXPECT_FALSE(z.earliest_entry_delay(pt(1, 1)).has_value());
  EXPECT_EQ(z.earliest_entry_delay(pt(4, 0)), 0);
}

TEST(Dbm, LatestStayDelay) {
  const Dbm z = box_xy(0, 8, 0, 6);
  EXPECT_EQ(z.latest_stay_delay(pt(2, 1)), 5);  // y hits 6 first
  EXPECT_EQ(z.latest_stay_delay(pt(8, 6)), 0);
  const Dbm u = Dbm::universal(3);
  EXPECT_EQ(u.latest_stay_delay(pt(1, 1)), Dbm::kNoDeadline);
}

TEST(Dbm, ExtrapolationWidensLargeBounds) {
  // Max constant 5 for both clocks: x ≥ 9 must widen to x > 5.
  Dbm z = Dbm::universal(3);
  ASSERT_TRUE(z.constrain(0, 1, make_weak(-9)));  // x ≥ 9
  ASSERT_TRUE(z.constrain(1, 0, make_weak(12)));  // x ≤ 12
  ASSERT_TRUE(z.constrain(2, 0, make_weak(3)));   // y ≤ 3
  const std::vector<bound_t> max_consts = {0, 5, 5};
  z.extrapolate_max_bounds(max_consts);
  EXPECT_TRUE(z.contains_point(pt(6, 3)));     // was excluded (x < 9)
  EXPECT_TRUE(z.contains_point(pt(100, 3)));   // upper bound dropped
  EXPECT_FALSE(z.contains_point(pt(5, 3)));    // still x > 5
  EXPECT_FALSE(z.contains_point(pt(6, 4)));    // small bounds intact
}

TEST(Dbm, ExtrapolationIsIdempotent) {
  Dbm z = box_xy(1, 4, 2, 3);
  const std::vector<bound_t> max_consts = {0, 10, 10};
  Dbm before(z);
  z.extrapolate_max_bounds(max_consts);
  EXPECT_EQ(z.relation(before), Relation::kEqual);  // all bounds small
}

TEST(Dbm, SubtractDisjointPiecesReassembleDifference) {
  const Dbm a = box_xy(0, 6, 0, 6);
  const Dbm b = box_xy(2, 4, 1, 3);
  const std::vector<Dbm> pieces = subtract(a, b);
  ASSERT_FALSE(pieces.empty());
  // Pairwise disjoint.
  for (std::size_t i = 0; i < pieces.size(); ++i) {
    for (std::size_t j = i + 1; j < pieces.size(); ++j) {
      EXPECT_FALSE(pieces[i].intersects(pieces[j]));
    }
  }
  // Sample check of the set identity on the integer grid.
  for (std::int64_t x = 0; x <= 6; ++x) {
    for (std::int64_t y = 0; y <= 6; ++y) {
      const auto p = pt(x, y);
      const bool expect = a.contains_point(p) && !b.contains_point(p);
      int covering = 0;
      for (const Dbm& piece : pieces) covering += piece.contains_point(p);
      EXPECT_EQ(covering, expect ? 1 : 0) << "at (" << x << "," << y << ")";
    }
  }
}

TEST(Dbm, SubtractWhenDisjointReturnsOriginal) {
  const Dbm a = box_xy(0, 2, 0, 2);
  const Dbm b = box_xy(5, 6, 5, 6);
  const auto pieces = subtract(a, b);
  ASSERT_EQ(pieces.size(), 1u);
  EXPECT_EQ(pieces[0].relation(a), Relation::kEqual);
}

TEST(Dbm, SubtractWhenCoveredReturnsNothing) {
  const Dbm a = box_xy(2, 3, 2, 3);
  const Dbm b = box_xy(0, 5, 0, 5);
  EXPECT_TRUE(subtract(a, b).empty());
}

TEST(Dbm, ToStringReadable) {
  Dbm z = Dbm::universal(3);
  ASSERT_TRUE(z.constrain(1, 0, make_weak(4)));
  ASSERT_TRUE(z.constrain(0, 1, make_strict(-1)));
  const std::vector<std::string> names = {"0", "x", "y"};
  const std::string s = z.to_string(names);
  EXPECT_NE(s.find("x<=4"), std::string::npos);
  EXPECT_NE(s.find("x>1"), std::string::npos);
}

TEST(Dbm, HashDiscriminatesAndAgrees) {
  const Dbm a = box_xy(0, 5, 0, 5);
  const Dbm b = box_xy(0, 5, 0, 5);
  const Dbm c = box_xy(0, 5, 0, 4);
  EXPECT_EQ(a.hash(), b.hash());
  EXPECT_TRUE(a == b);
  EXPECT_NE(a.hash(), c.hash());
  EXPECT_FALSE(a == c);
}

}  // namespace
}  // namespace tigat::dbm
