// Tests for the safe-timed-predecessor operator pred_t(B, G) — the key
// symbolic primitive of the timed-game fixpoint.
//
// Hand cases first (1-clock intervals where the answer is obvious),
// then randomized comparison against the discretised oracle.
#include <gtest/gtest.h>

#include "dbm/federation.h"
#include "support/grid_oracle.h"
#include "util/rng.h"

namespace tigat::dbm {
namespace {

using test::GridOracle;

Dbm interval(bound_t lo, bound_t hi, Strict lo_s = Strict::kWeak,
             Strict hi_s = Strict::kWeak) {
  Dbm z = Dbm::universal(2);
  EXPECT_TRUE(z.constrain(1, 0, make_bound(hi, hi_s)));
  EXPECT_TRUE(z.constrain(0, 1, make_bound(-lo, lo_s)));
  return z;
}

bool holds_at(const Fed& f, std::int64_t x2) {  // x2 in half units
  return f.contains_point({0, x2}, 2);
}

TEST(PredT, NoBadIsDownClosure) {
  Fed good(interval(5, 6));
  const Fed p = good.pred_t(Fed(2));
  EXPECT_TRUE(holds_at(p, 0));
  EXPECT_TRUE(holds_at(p, 12));   // 6.0
  EXPECT_FALSE(holds_at(p, 13));  // 6.5
}

TEST(PredT, BadAboveGoodDoesNotBlock) {
  // good [2,3], bad [5,6]: anything ≤ 3 delays into good before bad.
  Fed good(interval(2, 3));
  Fed bad(interval(5, 6));
  const Fed p = good.pred_t(bad);
  EXPECT_TRUE(holds_at(p, 0));
  EXPECT_TRUE(holds_at(p, 6));    // 3.0
  EXPECT_FALSE(holds_at(p, 7));   // 3.5: good already passed
  EXPECT_FALSE(holds_at(p, 10));  // 5.0: inside bad
  EXPECT_FALSE(holds_at(p, 14));  // 7.0: above everything
}

TEST(PredT, BadBelowGoodBlocksFromBelow) {
  // good [5,6], bad [2,3]: only (3,6] can reach good avoiding bad.
  Fed good(interval(5, 6));
  Fed bad(interval(2, 3));
  const Fed p = good.pred_t(bad);
  EXPECT_FALSE(holds_at(p, 0));
  EXPECT_FALSE(holds_at(p, 4));  // 2.0 ∈ bad
  EXPECT_FALSE(holds_at(p, 6));  // 3.0 ∈ bad (closed avoidance)
  EXPECT_TRUE(holds_at(p, 7));   // 3.5
  EXPECT_TRUE(holds_at(p, 12));  // 6.0
  EXPECT_FALSE(holds_at(p, 13));
}

TEST(PredT, BadInsideGoodSplitsRegion) {
  // good [2,3], bad [2.5, 2.7] ≈ use bad (2,3) strict inner interval:
  // model integers only, so take good [2,6], bad [3,4].
  Fed good(interval(2, 6));
  Fed bad(interval(3, 4));
  const Fed p = good.pred_t(bad);
  // From 0: reaches good at 2 < 3 = bad entry.  In.
  EXPECT_TRUE(holds_at(p, 0));
  EXPECT_TRUE(holds_at(p, 4));   // 2.0 already in good
  EXPECT_TRUE(holds_at(p, 5));   // 2.5 in good, before bad
  EXPECT_FALSE(holds_at(p, 6));  // 3.0 ∈ bad
  EXPECT_FALSE(holds_at(p, 8));  // 4.0 ∈ bad
  EXPECT_TRUE(holds_at(p, 9));   // 4.5 in good above bad
  EXPECT_TRUE(holds_at(p, 12));  // 6.0
  EXPECT_FALSE(holds_at(p, 13));
}

TEST(PredT, UnionGoodDecomposes) {
  // good [2,3] ∪ [7,8], bad [5,6]: [0,3] ∪ (6,8].
  Fed good(2);
  good.add(interval(2, 3));
  good.add(interval(7, 8));
  Fed bad(interval(5, 6));
  const Fed p = good.pred_t(bad);
  EXPECT_TRUE(holds_at(p, 0));
  EXPECT_TRUE(holds_at(p, 6));    // 3.0
  EXPECT_FALSE(holds_at(p, 7));   // 3.5 — must cross bad to reach [7,8]
  EXPECT_FALSE(holds_at(p, 12));  // 6.0 ∈ bad
  EXPECT_TRUE(holds_at(p, 13));   // 6.5
  EXPECT_TRUE(holds_at(p, 16));   // 8.0
  EXPECT_FALSE(holds_at(p, 17));
}

TEST(PredT, UnionBadIntersects) {
  // good [7,9], bad [2,3] ∪ [5,6]: entry only above 6.
  Fed good(interval(7, 9));
  Fed bad(2);
  bad.add(interval(2, 3));
  bad.add(interval(5, 6));
  const Fed p = good.pred_t(bad);
  EXPECT_FALSE(holds_at(p, 0));
  EXPECT_FALSE(holds_at(p, 7));   // 3.5: still blocked by [5,6]
  EXPECT_FALSE(holds_at(p, 12));  // 6.0 ∈ bad
  EXPECT_TRUE(holds_at(p, 13));   // 6.5
  EXPECT_TRUE(holds_at(p, 18));   // 9.0
  EXPECT_FALSE(holds_at(p, 19));
}

TEST(PredT, StrictBadBoundaryAdmitsTouching) {
  // bad (3,4) open: waiting at exactly 3 is allowed, and good [3,3]
  // punctual is reachable from below.
  Fed good(interval(3, 3));
  Fed bad(interval(3, 4, Strict::kStrict, Strict::kStrict));
  const Fed p = good.pred_t(bad);
  EXPECT_TRUE(holds_at(p, 0));
  EXPECT_TRUE(holds_at(p, 6));  // 3.0 itself
  EXPECT_FALSE(holds_at(p, 7));
}

TEST(PredT, GoodInsideBadIsUnreachable) {
  Fed good(interval(3, 4));
  Fed bad(interval(2, 5));
  EXPECT_TRUE(good.pred_t(bad).is_empty());
}

TEST(PredT, TwoClockDiagonalBlocking) {
  // Clocks x (1) and y (2).  good: x ∈ [4,5], y unrestricted.
  // bad: y ∈ [2,3].  Starting at (x=0,y=0) the trajectory hits bad at
  // y=2 long before x=4 ⇒ not in pred_t.  Starting at (2,0): x reaches
  // 4 when y = 2 — still blocked (closed avoidance).  (3,0): x=4 at
  // y=1 < 2 ⇒ in.
  Dbm good_z = Dbm::universal(3);
  ASSERT_TRUE(good_z.constrain(1, 0, make_weak(5)));
  ASSERT_TRUE(good_z.constrain(0, 1, make_weak(-4)));
  Dbm bad_z = Dbm::universal(3);
  ASSERT_TRUE(bad_z.constrain(2, 0, make_weak(3)));
  ASSERT_TRUE(bad_z.constrain(0, 2, make_weak(-2)));
  Fed good(good_z);
  Fed bad(bad_z);
  const Fed p = good.pred_t(bad);
  EXPECT_FALSE(p.contains_point({0, 0, 0}));
  EXPECT_FALSE(p.contains_point({0, 2, 0}));
  EXPECT_TRUE(p.contains_point({0, 3, 0}));
  EXPECT_TRUE(p.contains_point({0, 4, 0}));
  // Above bad entirely: y starts at 4.
  EXPECT_TRUE(p.contains_point({0, 0, 4}));
}

// Randomized comparison with the oracle, the strongest evidence that
// the three decomposition identities are implemented correctly.
class PredTPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PredTPropertyTest, MatchesOracleDim2) {
  constexpr std::int32_t kMax = 4;
  GridOracle grid(2, kMax);
  util::Rng rng(GetParam());
  for (int iter = 0; iter < 60; ++iter) {
    const Fed good = grid.random_fed(rng, kMax, 3);
    const Fed bad = grid.random_fed(rng, kMax, 3);
    const Fed p = good.pred_t(bad);
    for (const auto& pt2 : grid.sample_points()) {
      EXPECT_EQ(p.contains_point(pt2, GridOracle::kScale),
                grid.in_pred_t(good, bad, pt2))
          << "good: " << good.to_string() << "\nbad:  " << bad.to_string();
    }
  }
}

TEST_P(PredTPropertyTest, MatchesOracleDim3) {
  constexpr std::int32_t kMax = 3;
  GridOracle grid(3, kMax);
  util::Rng rng(GetParam() + 500);
  for (int iter = 0; iter < 15; ++iter) {
    const Fed good = grid.random_fed(rng, kMax, 2);
    const Fed bad = grid.random_fed(rng, kMax, 2);
    const Fed p = good.pred_t(bad);
    for (const auto& pt3 : grid.sample_points()) {
      EXPECT_EQ(p.contains_point(pt3, GridOracle::kScale),
                grid.in_pred_t(good, bad, pt3))
          << "good: " << good.to_string() << "\nbad:  " << bad.to_string();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PredTPropertyTest,
                         ::testing::Values(101u, 102u, 103u, 104u, 105u));

}  // namespace
}  // namespace tigat::dbm
