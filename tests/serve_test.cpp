// The tigat-serve contract: a decide() answered over the socket is the
// decide() of the in-process DecisionTable — same Move, every state,
// every client, under pipelining and under concurrency.  Plus the
// protocol edges (hello identity, ping/info, malformed frames closing
// the stream with kBadRequest) and the daemon binary end to end
// (serve/info/migrate subcommands, signal shutdown, exit taxonomy).
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "decision/compiler.h"
#include "decision/serialize.h"
#include "game/solver.h"
#include "game/strategy.h"
#include "models/lep.h"
#include "models/smart_light.h"
#include "semantics/concrete.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "util/rng.h"

namespace tigat::serve {
namespace {

constexpr std::int64_t kScale = 16;
constexpr std::uint64_t kSeed = 0x5e57e5ULL;

using decision::DecisionTable;
using semantics::ConcreteState;

std::shared_ptr<const game::GameSolution> solve(const tsystem::System& sys,
                                                const std::string& purpose) {
  game::GameSolver solver(sys, tsystem::TestPurpose::parse(sys, purpose));
  return solver.solve();
}

std::vector<ConcreteState> fuzz_states(const game::GameSolution& solution,
                                       util::Rng& rng, std::size_t count) {
  const auto& g = solution.graph();
  dbm::bound_t max_const = 1;
  for (const dbm::bound_t c : g.max_constants()) {
    max_const = std::max(max_const, c);
  }
  const std::int64_t hi = (static_cast<std::int64_t>(max_const) + 2) * kScale;
  std::vector<ConcreteState> out;
  out.reserve(count);
  for (std::size_t n = 0; n < count; ++n) {
    const auto k = static_cast<std::uint32_t>(
        rng.range(0, static_cast<std::int64_t>(g.key_count()) - 1));
    ConcreteState s;
    s.locs = g.key(k).locs;
    s.data = g.key(k).data;
    s.clocks.assign(g.system().clock_count(), 0);
    for (std::size_t c = 1; c < s.clocks.size(); ++c) {
      s.clocks[c] = rng.range(0, hi);
    }
    out.push_back(std::move(s));
  }
  return out;
}

// A unique abstract-adjacent path under the test tmpdir (sun_path is
// only ~100 bytes, so keep it short).
std::string socket_path(const char* tag) {
  return ::testing::TempDir() + "/tigat_" + tag + ".sock";
}

struct ServedTable {
  std::shared_ptr<const game::GameSolution> solution;
  DecisionTable table;
  Server server;

  ServedTable(const tsystem::System& sys, const std::string& purpose,
              const char* tag, unsigned threads = 2)
      : solution(solve(sys, purpose)),
        table(decision::compile(*solution)),
        server(table, {.socket_path = socket_path(tag),
                       .threads = threads}) {
    server.start();
  }
};

TEST(Serve, HelloCarriesTableIdentity) {
  const auto light = models::make_smart_light();
  ServedTable served(light.system, "control: A<> IUT.Bright", "hello");
  Client client = Client::connect(served.server.socket_path());
  EXPECT_EQ(client.hello().proto, kProtoVersion);
  EXPECT_EQ(client.hello().fingerprint, served.table.fingerprint());
  EXPECT_EQ(client.hello().clock_dim, served.table.clock_dim());
  EXPECT_EQ(client.hello().purpose_kind, served.table.purpose_kind());
  // info() re-fetches the same body over the wire.
  EXPECT_EQ(client.info(), client.hello());
  client.ping();
}

// The core equivalence: N concurrent clients, each streaming fuzz
// states, every reply equal to the in-process table's decide — on the
// reachability table and on the safety table (the fat-leaf path runs
// server-side too).
void check_concurrent_equivalence(const tsystem::System& sys,
                                  const std::string& purpose,
                                  const char* tag, std::size_t per_client) {
  ServedTable served(sys, purpose, tag);
  constexpr int kClients = 4;
  std::vector<std::thread> threads;
  std::vector<std::string> failures(kClients);
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      util::Rng rng(kSeed + static_cast<std::uint64_t>(c));
      const auto states = fuzz_states(*served.solution, rng, per_client);
      Client client = Client::connect(served.server.socket_path());
      for (const ConcreteState& s : states) {
        const game::Move remote = client.decide(s, kScale);
        const game::Move local = served.table.decide(s, kScale);
        if (!(remote == local)) {
          failures[c] = "client " + std::to_string(c) +
                        ": served move differs from in-process decide";
          return;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  for (const std::string& f : failures) EXPECT_EQ(f, "");
  EXPECT_GE(served.server.connections_total(), kClients);
  EXPECT_GE(served.server.requests_total(),
            kClients * per_client + 0u);
  EXPECT_EQ(served.server.errors_total(), 0u);
}

TEST(Serve, SmartLightConcurrentClientsMatchInProcess) {
  const auto light = models::make_smart_light();
  check_concurrent_equivalence(light.system, "control: A<> IUT.Bright",
                               "sl_reach", 400);
}

TEST(Serve, SmartLightSafetyConcurrentClientsMatchInProcess) {
  const auto light = models::make_smart_light();
  check_concurrent_equivalence(light.system, "control: A[] !IUT.Bright",
                               "sl_safe", 400);
}

TEST(Serve, LepN3ConcurrentClientsMatchInProcess) {
  const auto lep = models::make_lep({.nodes = 3});
  check_concurrent_equivalence(lep.system, models::lep_tp1(), "lep3", 150);
}

// Replies come back in request order: pipeline a burst, then drain.
TEST(Serve, PipelinedRepliesStayInOrder) {
  const auto light = models::make_smart_light();
  ServedTable served(light.system, "control: A<> IUT.Bright", "pipe");
  util::Rng rng(kSeed);
  const auto states = fuzz_states(*served.solution, rng, 300);
  Client client = Client::connect(served.server.socket_path());
  for (const ConcreteState& s : states) client.send_decide(s, kScale);
  client.flush();
  for (const ConcreteState& s : states) {
    EXPECT_EQ(client.read_move(), served.table.decide(s, kScale));
  }
}

// A served table mapped from disk answers exactly like the compiled
// one it was saved from — the zero-copy daemon path end to end,
// in-process.
TEST(Serve, MappedTableServesIdentically) {
  const auto light = models::make_smart_light();
  const auto solution = solve(light.system, "control: A[] !IUT.Bright");
  const DecisionTable compiled = decision::compile(*solution);
  const std::string path = ::testing::TempDir() + "/serve_mapped.tgs";
  decision::save(compiled, path);
  const DecisionTable mapped = DecisionTable::map(path);
  ASSERT_TRUE(mapped.is_mapped());

  Server server(mapped, {.socket_path = socket_path("map"), .threads = 1});
  server.start();
  util::Rng rng(kSeed);
  const auto states = fuzz_states(*solution, rng, 500);
  Client client = Client::connect(server.socket_path());
  for (const ConcreteState& s : states) {
    EXPECT_EQ(client.decide(s, kScale), compiled.decide(s, kScale));
  }
  client.close();
  server.stop();
  std::remove(path.c_str());
}

// ── protocol edges ──────────────────────────────────────────────────

// Raw socket access for malformed-frame tests.
int raw_connect(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  EXPECT_GE(fd, 0);
  sockaddr_un addr = {};
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  EXPECT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof(addr)),
            0);
  return fd;
}

std::vector<std::uint8_t> read_all(int fd) {
  std::vector<std::uint8_t> out;
  std::uint8_t buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) break;
    out.insert(out.end(), buf, buf + n);
  }
  return out;
}

TEST(Serve, MalformedFramesGetBadRequestAndClose) {
  const auto light = models::make_smart_light();
  ServedTable served(light.system, "control: A<> IUT.Bright", "bad", 1);

  const auto expect_rejected = [&](std::vector<std::uint8_t> wire,
                                   const char* what) {
    const int fd = raw_connect(served.server.socket_path());
    ASSERT_EQ(::send(fd, wire.data(), wire.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(wire.size()))
        << what;
    // hello frame, then the error reply, then EOF (server closed).
    const std::vector<std::uint8_t> got = read_all(fd);
    ::close(fd);
    std::size_t at = 0;
    const auto hello = next_frame(got, at);
    ASSERT_TRUE(hello.has_value()) << what;
    (void)decode_hello(*hello);
    const auto reply = next_frame(got, at);
    ASSERT_TRUE(reply.has_value()) << what;
    ASSERT_FALSE(reply->empty()) << what;
    EXPECT_EQ((*reply)[0], kStatusBadRequest) << what;
    EXPECT_EQ(at, got.size()) << what;  // nothing after the error
  };

  {
    std::vector<std::uint8_t> wire;
    const std::uint8_t op = 0x7f;  // unknown op
    append_frame(wire, std::span<const std::uint8_t>(&op, 1));
    expect_rejected(std::move(wire), "unknown op");
  }
  {
    std::vector<std::uint8_t> wire;
    append_frame(wire, std::span<const std::uint8_t>());  // empty request
    expect_rejected(std::move(wire), "empty frame");
  }
  {
    // A decide body truncated mid-count.
    std::vector<std::uint8_t> wire;
    const std::uint8_t body[] = {kOpDecide, 1, 2, 3};
    append_frame(wire, body);
    expect_rejected(std::move(wire), "truncated decide");
  }
  {
    // Shape mismatch: right structure, wrong loc vector length.
    ConcreteState s;
    s.locs = {0};  // table expects proc_count locs
    s.clocks = {0, 0, 0};
    std::vector<std::uint8_t> wire;
    append_frame(wire, encode_decide_request(s, kScale));
    expect_rejected(std::move(wire), "wrong shape");
  }
  {
    // An oversized length prefix must not allocate or hang.
    std::vector<std::uint8_t> wire(4);
    const std::uint32_t huge = kMaxFrameBytes + 1;
    std::memcpy(wire.data(), &huge, 4);
    expect_rejected(std::move(wire), "oversized frame");
  }
  EXPECT_GT(served.server.errors_total(), 0u);
}

TEST(Serve, StopWhileClientsConnectedIsClean) {
  const auto light = models::make_smart_light();
  auto served = std::make_unique<ServedTable>(
      light.system, "control: A<> IUT.Bright", "stop");
  Client client = Client::connect(served->server.socket_path());
  client.ping();
  served->server.stop();
  // The socket is gone and the connection is dead — but the process
  // and the client object are fine.
  EXPECT_THROW((void)Client::connect(socket_path("stop")),
               std::system_error);
}

// ── the tigat-serve binary ──────────────────────────────────────────

#ifdef TIGAT_SERVE_BIN

struct Daemon {
  pid_t pid = -1;

  static Daemon spawn(const std::vector<std::string>& args) {
    Daemon d;
    d.pid = ::fork();
    if (d.pid == 0) {
      std::vector<char*> argv;
      argv.push_back(const_cast<char*>(TIGAT_SERVE_BIN));
      for (const std::string& a : args) {
        argv.push_back(const_cast<char*>(a.c_str()));
      }
      argv.push_back(nullptr);
      ::execv(TIGAT_SERVE_BIN, argv.data());
      ::_exit(127);
    }
    return d;
  }

  int terminate() {
    ::kill(pid, SIGTERM);
    int status = 0;
    ::waitpid(pid, &status, 0);
    pid = -1;
    return WIFEXITED(status) ? WEXITSTATUS(status) : -WTERMSIG(status);
  }
};

bool wait_for_socket(const std::string& path, int tries = 100) {
  for (int t = 0; t < tries; ++t) {
    struct stat st;
    if (::stat(path.c_str(), &st) == 0 && S_ISSOCK(st.st_mode)) return true;
    ::usleep(50 * 1000);
  }
  return false;
}

TEST(ServeBinary, ServesSavedTableAndShutsDownCleanly) {
  const auto light = models::make_smart_light();
  const auto solution = solve(light.system, "control: A[] !IUT.Bright");
  const DecisionTable table = decision::compile(*solution);
  const std::string tgs = ::testing::TempDir() + "/serve_bin.tgs";
  decision::save(table, tgs);
  const std::string sock = socket_path("bin");

  Daemon daemon = Daemon::spawn(
      {"serve", "--table=" + tgs, "--socket=" + sock, "--threads=2"});
  ASSERT_TRUE(wait_for_socket(sock));

  {
    Client client = Client::connect(sock);
    EXPECT_EQ(client.hello().fingerprint, table.fingerprint());
    util::Rng rng(kSeed);
    for (const ConcreteState& s : fuzz_states(*solution, rng, 200)) {
      EXPECT_EQ(client.decide(s, kScale), table.decide(s, kScale));
    }
  }
  EXPECT_EQ(daemon.terminate(), 0);
  std::remove(tgs.c_str());
}

TEST(ServeBinary, LegacyTableIsRefusedWithMigrateDiagnostic) {
  // A bare v2 stub: serve must exit 1 (re-solve class), not 2.
  const std::string tgs = ::testing::TempDir() + "/serve_bin_v2.tgs";
  {
    std::vector<std::uint8_t> stub(24, 0);
    std::memcpy(stub.data(), "TGSD", 4);
    const std::uint32_t version = 2;
    std::memcpy(stub.data() + 4, &version, 4);
    std::FILE* f = std::fopen(tgs.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fwrite(stub.data(), 1, stub.size(), f);
    std::fclose(f);
  }
  Daemon daemon = Daemon::spawn(
      {"serve", "--table=" + tgs, "--socket=" + socket_path("binv2")});
  int status = 0;
  ::waitpid(daemon.pid, &status, 0);
  daemon.pid = -1;
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 1);
  std::remove(tgs.c_str());
}

#endif  // TIGAT_SERVE_BIN

}  // namespace
}  // namespace tigat::serve
