// Flight recorder + explain suite: the run ledger contracts that make
// every non-PASS verdict a replayable, self-explaining artifact.
//
// The properties under test:
//   * determinism — identical (seed, spec, model) inputs produce
//     byte-identical ledgers, at any solver thread count, across
//     repeated campaigns;
//   * neutrality — attaching the recorder changes NOTHING observable:
//     campaign JSON is byte-identical recorded vs unrecorded (metrics
//     off) and every behavioural counter delta matches (metrics on);
//   * explainability — a mutant FAIL's ledger names the failing step,
//     the reason code, the expected-vs-observed output sets, and the
//     injected-fault interleaving, in both machine and human form;
//   * economy — PASS attempts leave no ledgers behind.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "decision/source.h"
#include "game/solver.h"
#include "game/strategy.h"
#include "models/smart_light.h"
#include "obs/explain.h"
#include "obs/metrics.h"
#include "obs/recorder.h"
#include "testing/campaign.h"
#include "testing/executor.h"
#include "testing/mutants.h"
#include "testing/simulated_imp.h"

namespace tigat::testing {
namespace {

using game::GameSolver;
using game::SolverOptions;
using game::Strategy;
using models::make_smart_light;
using models::make_smart_light_plant_only;
using tsystem::TestPurpose;

constexpr std::int64_t kScale = 16;
constexpr char kProperty[] = "control: A<> IUT.Bright";

class LedgerTest : public ::testing::Test {
 protected:
  LedgerTest()
      : spec_(make_smart_light()), plant_(make_smart_light_plant_only()) {}

  [[nodiscard]] Strategy strategy_with_threads(unsigned threads) const {
    SolverOptions sopts;
    sopts.threads = threads;
    GameSolver solver(spec_.system, TestPurpose::parse(spec_.system, kProperty),
                      sopts);
    return Strategy(solver.solve());
  }

  [[nodiscard]] CampaignReport campaign(const Strategy& strat,
                                        Implementation& imp,
                                        const CampaignOptions& opts) const {
    const decision::StrategySource source(strat);
    return campaign_run(source, spec_.system, imp, kScale, opts);
  }

  // Every ledger of every outcome, concatenated in journal order — the
  // byte string two equal campaigns must agree on.
  [[nodiscard]] static std::string all_ledgers(const CampaignReport& report) {
    std::string out;
    for (const RunOutcome& o : report.outcomes) {
      for (const obs::RunLedger& led : o.ledgers) out += led.to_jsonl();
    }
    return out;
  }

  models::SmartLight spec_;
  models::SmartLight plant_;
};

// ------------------------------------------------------- determinism

TEST_F(LedgerTest, ByteIdenticalAcrossSolverThreadCounts) {
  const Strategy serial = strategy_with_threads(1);
  const Strategy parallel = strategy_with_threads(8);

  CampaignOptions opts;
  opts.runs = 3;
  opts.retries = 1;
  opts.fault_spec = "drop=0.4,reject=0.4,delay=0..4";
  opts.fault_seed = 5;
  opts.record_ledgers = true;

  SimulatedImplementation imp_a(plant_.system, kScale, ImpPolicy{kScale, {}});
  SimulatedImplementation imp_b(plant_.system, kScale, ImpPolicy{kScale, {}});
  const CampaignReport a = campaign(serial, imp_a, opts);
  const CampaignReport b = campaign(parallel, imp_b, opts);

  EXPECT_EQ(a.to_json(), b.to_json());
  const std::string ledgers_a = all_ledgers(a);
  EXPECT_EQ(ledgers_a, all_ledgers(b));
  // The fault mix above must actually have produced non-PASS attempts,
  // or the byte comparison compared two empty strings.
  EXPECT_FALSE(ledgers_a.empty());
}

TEST_F(LedgerTest, RepeatedCampaignsProduceByteIdenticalLedgers) {
  const Strategy strat = strategy_with_threads(1);
  CampaignOptions opts;
  opts.runs = 3;
  opts.retries = 2;
  opts.fault_spec = "drop=0.4,reject=0.4";
  opts.fault_seed = 13;
  opts.record_ledgers = true;

  SimulatedImplementation imp_a(plant_.system, kScale, ImpPolicy{kScale, {}});
  SimulatedImplementation imp_b(plant_.system, kScale, ImpPolicy{kScale, {}});
  const std::string a = all_ledgers(campaign(strat, imp_a, opts));
  const std::string b = all_ledgers(campaign(strat, imp_b, opts));
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a.empty());

  // A different seed journals a different story.
  opts.fault_seed = 14;
  SimulatedImplementation imp_c(plant_.system, kScale, ImpPolicy{kScale, {}});
  EXPECT_NE(all_ledgers(campaign(strat, imp_c, opts)), a);
}

// -------------------------------------------------------- neutrality

TEST_F(LedgerTest, RecordedAndUnrecordedCampaignsAreByteIdentical) {
  ASSERT_FALSE(obs::metrics_enabled())
      << "this comparison needs the metrics-off (wall-clock-free) JSON";
  const Strategy strat = strategy_with_threads(1);
  CampaignOptions opts;
  opts.runs = 3;
  opts.retries = 2;
  opts.fault_spec = "drop=0.3,delay=0..8,dup=0.1";
  opts.fault_seed = 11;

  opts.record_ledgers = false;
  SimulatedImplementation imp_plain(plant_.system, kScale,
                                    ImpPolicy{kScale, {}});
  const std::string plain = campaign(strat, imp_plain, opts).to_json();

  opts.record_ledgers = true;
  SimulatedImplementation imp_rec(plant_.system, kScale,
                                  ImpPolicy{kScale, {}});
  EXPECT_EQ(campaign(strat, imp_rec, opts).to_json(), plain);
}

TEST_F(LedgerTest, RecordingCausesZeroCounterDrift) {
  const Strategy strat = strategy_with_threads(1);
  CampaignOptions opts;
  opts.runs = 2;
  opts.retries = 2;
  opts.fault_spec = "drop=0.3,delay=0..8,dup=0.1,reject=0.2";
  opts.fault_seed = 17;

  // Behavioural counters only — gauges and histogram sums are
  // wall-clock-fed and legitimately drift between any two runs.
  const std::vector<std::string> kCounters = {
      "executor.runs",   "executor.steps",   "executor.inputs",
      "executor.outputs", "executor.delays", "faults.drop",
      "faults.delay",    "faults.dup",       "faults.reject",
      "campaign.runs",   "campaign.retries", "campaign.attempts",
      "campaign.faults_injected",
  };
  obs::enable_metrics();
  const auto sample = [&] {
    std::vector<std::uint64_t> values;
    for (const auto& name : kCounters) {
      values.push_back(obs::metrics().counter(name).value());
    }
    return values;
  };
  const auto delta = [](const std::vector<std::uint64_t>& before,
                        const std::vector<std::uint64_t>& after) {
    std::vector<std::uint64_t> d;
    for (std::size_t i = 0; i < before.size(); ++i) {
      d.push_back(after[i] - before[i]);
    }
    return d;
  };

  opts.record_ledgers = false;
  SimulatedImplementation imp_plain(plant_.system, kScale,
                                    ImpPolicy{kScale, {}});
  const auto before_plain = sample();
  (void)campaign(strat, imp_plain, opts);
  const auto plain = delta(before_plain, sample());

  opts.record_ledgers = true;
  SimulatedImplementation imp_rec(plant_.system, kScale,
                                  ImpPolicy{kScale, {}});
  const auto before_rec = sample();
  (void)campaign(strat, imp_rec, opts);
  const auto rec = delta(before_rec, sample());

  // The step-latency histogram (satellite of this PR) must have been
  // fed while metrics were on.
  const std::uint64_t step_samples =
      obs::metrics()
          .histogram("executor.step_ns", obs::latency_buckets_ns())
          .count();
  obs::disable_metrics();

  for (std::size_t i = 0; i < kCounters.size(); ++i) {
    EXPECT_EQ(plain[i], rec[i])
        << "recording drifted counter " << kCounters[i];
  }
  EXPECT_GT(step_samples, 0u);
}

// ----------------------------------------------------------- explain

// A mutant killed over a CLEAN boundary: the ledger and its explain
// must pinpoint the verdict — step, code, expected vs observed — and
// agree with the executor's report.
TEST_F(LedgerTest, MutantFailLedgerExplainsItself) {
  const Strategy strat = strategy_with_threads(1);
  CampaignOptions opts;
  opts.runs = 1;
  opts.record_ledgers = true;

  const auto mutants = enumerate_mutants(plant_.system);
  bool explained = false;
  for (const auto& m : mutants) {
    const tsystem::System mutated = apply_mutant(plant_.system, m);
    SimulatedImplementation imp(mutated, kScale, ImpPolicy{0, {}});
    const CampaignReport report = campaign(strat, imp, opts);
    if (report.verdict != CampaignVerdict::kFail) continue;

    ASSERT_EQ(report.outcomes.size(), 1u);
    const RunOutcome& outcome = report.outcomes[0];
    ASSERT_EQ(outcome.ledgers.size(), 1u) << m.description;
    const obs::RunLedger& led = outcome.ledgers[0];

    // Header identifies the run.
    EXPECT_EQ(led.model, "smart_light");
    EXPECT_EQ(led.backend, "strategy-walk");
    EXPECT_EQ(led.run, 0u);
    EXPECT_EQ(led.attempt, 0u);

    // The verdict event is the last entry and matches the report.
    const obs::LedgerEvent* verdict = led.verdict_event();
    ASSERT_NE(verdict, nullptr) << m.description;
    EXPECT_EQ(verdict->verdict, "fail");
    EXPECT_EQ(verdict->code, to_string(outcome.report.code));
    EXPECT_EQ(verdict->step, outcome.report.steps);
    EXPECT_EQ(verdict->t, outcome.report.total_ticks);
    // A sound FAIL either expected outputs that never came (quiescence)
    // or observed one it could not accept — never neither.
    EXPECT_TRUE(!verdict->expected.empty() || !verdict->observed.empty())
        << m.description;

    // The machine explain agrees with the ledger.
    const obs::Explanation ex = obs::explain(led);
    EXPECT_EQ(ex.verdict, "fail");
    EXPECT_EQ(ex.code, verdict->code);
    EXPECT_EQ(ex.failing_step, verdict->step);
    EXPECT_EQ(ex.expected, verdict->expected);
    EXPECT_EQ(ex.observed, verdict->observed);
    EXPECT_TRUE(ex.faults.empty()) << "clean boundary journaled a fault";

    // The human post-mortem names the essentials.
    const std::string text = ex.to_text();
    EXPECT_NE(text.find("FAIL"), std::string::npos) << text;
    EXPECT_NE(text.find(verdict->code), std::string::npos) << text;
    EXPECT_NE(text.find("verdict earned at step"), std::string::npos) << text;
    EXPECT_NE(text.find("smart_light"), std::string::npos) << text;

    // And the JSON serialisations carry their schema tags.
    EXPECT_NE(led.to_jsonl().find("\"schema\": \"tigat.ledger\""),
              std::string::npos);
    EXPECT_NE(ex.to_json().find("\"schema\": \"tigat.explain\""),
              std::string::npos);
    explained = true;
    break;
  }
  EXPECT_TRUE(explained) << "no mutant FAILed; the golden assertions never ran";
}

// Under chaos, the ledger journals every injected fault in
// interleaving order, and the explain surfaces them.
TEST_F(LedgerTest, InjectedFaultsAreJournaledInInterleavingOrder) {
  const Strategy strat = strategy_with_threads(1);
  CampaignOptions opts;
  opts.runs = 4;
  opts.fault_spec = "drop=0.5,reject=0.5";
  opts.record_ledgers = true;

  bool journaled = false;
  for (std::uint64_t seed = 1; seed <= 20 && !journaled; ++seed) {
    opts.fault_seed = seed;
    SimulatedImplementation imp(plant_.system, kScale, ImpPolicy{kScale, {}});
    const CampaignReport report = campaign(strat, imp, opts);
    for (const RunOutcome& o : report.outcomes) {
      for (const obs::RunLedger& led : o.ledgers) {
        std::uint64_t last_call = 0;
        std::size_t faults = 0;
        for (const obs::LedgerEvent& ev : led.events) {
          if (ev.kind != obs::LedgerEvent::Kind::kFault) continue;
          ++faults;
          EXPECT_GE(ev.call, last_call) << "fault events out of order";
          last_call = ev.call;
          EXPECT_TRUE(ev.fault == "drop" || ev.fault == "reject") << ev.fault;
        }
        if (faults == 0) continue;
        const obs::Explanation ex = obs::explain(led);
        EXPECT_EQ(ex.faults.size(), faults);
        EXPECT_NE(ex.to_text().find("fault interleaving:"),
                  std::string::npos);
        journaled = true;
      }
    }
  }
  EXPECT_TRUE(journaled)
      << "no non-PASS attempt journaled a fault across the seed sweep";
}

// ----------------------------------------------------------- economy

TEST_F(LedgerTest, PassingCampaignKeepsNoLedgers) {
  const Strategy strat = strategy_with_threads(1);
  CampaignOptions opts;
  opts.runs = 3;
  opts.record_ledgers = true;

  SimulatedImplementation imp(plant_.system, kScale, ImpPolicy{kScale, {}});
  const CampaignReport report = campaign(strat, imp, opts);
  ASSERT_EQ(report.verdict, CampaignVerdict::kPass);
  for (const RunOutcome& o : report.outcomes) {
    EXPECT_TRUE(o.ledgers.empty()) << "PASS attempt kept a ledger";
  }
}

}  // namespace
}  // namespace tigat::testing
