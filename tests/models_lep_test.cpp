// Tests for the Leader Election Protocol model and the paper's three
// test purposes (Sec. 4).
#include <gtest/gtest.h>

#include "game/solver.h"
#include "models/lep.h"
#include "semantics/concrete.h"

namespace tigat::models {
namespace {

using game::GameSolver;
using tsystem::TestPurpose;

TEST(Lep, BuildsAndScalesStructurally) {
  for (const std::uint32_t n : {2u, 3u, 5u}) {
    const Lep m = make_lep({.nodes = n});
    EXPECT_TRUE(m.system.finalized());
    EXPECT_EQ(m.system.clock_count(), 3u);  // ref + w + e
    EXPECT_EQ(m.system.data().decl(m.in_use).size, n);
    EXPECT_EQ(m.system.data().decl(m.msg_addr).size, n);
    // Put edges scale with slots × addresses.
    const auto& env = m.system.processes()[m.env];
    EXPECT_GT(env.edges().size(), n * (n - 1));
  }
}

TEST(Lep, PurposesParse) {
  const Lep m = make_lep({.nodes = 3});
  for (const std::string& tp : {lep_tp1(), lep_tp2(), lep_tp3()}) {
    EXPECT_NO_THROW(TestPurpose::parse(m.system, tp)) << tp;
  }
}

TEST(Lep, ConcreteScenarioLearnAndForward) {
  const Lep m = make_lep({.nodes = 3});
  semantics::ConcreteSemantics sem(m.system, 4);
  auto s = sem.initial();
  EXPECT_EQ(s.locs[m.iut], m.idle);
  EXPECT_EQ(s.data.get(m.system.data().slot_of(m.best, 0)), 2);  // own addr

  // Env puts address 0 into slot 1 (a τ move, enabled immediately).
  bool put_fired = false;
  for (const auto& t : sem.enabled_instances(s)) {
    if (t.is_sync() || t.primary.process != m.env) continue;
    const auto& e = m.system.processes()[m.env].edges()[t.primary.edge];
    if (e.comment == "node 0 sends via slot 1") {
      sem.fire(s, t);
      put_fired = true;
      break;
    }
  }
  ASSERT_TRUE(put_fired);
  EXPECT_EQ(s.data.get(m.system.data().slot_of(m.in_use, 1)), 1);
  EXPECT_EQ(s.data.get(m.system.data().slot_of(m.msg_addr, 1)), 0);

  // After the pacing delay, select the slot and deliver.
  sem.delay(s, 4);  // e = 1
  bool selected = false;
  for (const auto& t : sem.enabled_instances(s)) {
    if (t.is_sync() || t.primary.process != m.env) continue;
    const auto& e = m.system.processes()[m.env].edges()[t.primary.edge];
    if (e.comment == "select slot 1") {
      sem.fire(s, t);
      selected = true;
      break;
    }
  }
  ASSERT_TRUE(selected);
  EXPECT_EQ(s.locs[m.env], m.env_sel);
  // Committed: time frozen, only the handshake may fire.
  EXPECT_EQ(sem.max_delay(s), 0);
  const auto actions = sem.enabled_instances(s);
  ASSERT_EQ(actions.size(), 1u);
  EXPECT_EQ(actions[0].channel_name(m.system).value_or(""), "msg");
  sem.fire(s, actions[0]);

  // The IUT learned the better address and must forward it.
  EXPECT_EQ(s.locs[m.iut], m.pending);
  EXPECT_EQ(s.data.get(m.system.data().slot_of(m.best, 0)), 0);
  EXPECT_EQ(s.data.get(m.system.data().slot_of(m.better_info, 0)), 1);
  EXPECT_EQ(sem.max_delay(s), 2 * 4);  // forward window

  // The forward goes to the lowest free slot (slot 0 here: slot 1 was
  // consumed on delivery).
  bool forwarded = false;
  for (const auto& t : sem.enabled_instances(s)) {
    if (t.channel_name(m.system).value_or("") == "fwd") {
      sem.fire(s, t);
      forwarded = true;
      break;
    }
  }
  ASSERT_TRUE(forwarded);
  EXPECT_EQ(s.locs[m.iut], m.forward);
  EXPECT_EQ(s.data.get(m.system.data().slot_of(m.in_use, 0)), 1);
  EXPECT_EQ(s.data.get(m.system.data().slot_of(m.msg_addr, 0)), 0);
}

TEST(Lep, TimeoutWindowIsUncontrollable) {
  const Lep m = make_lep({.nodes = 3});
  semantics::ConcreteSemantics sem(m.system, 4);
  auto s = sem.initial();
  // Before timeout_lo: no timeout possible.
  sem.delay(s, 3 * 4);
  for (const auto& t : sem.enabled_instances(s)) {
    EXPECT_NE(t.channel_name(m.system).value_or(""), "timeout");
  }
  // Inside [timeout_lo, timeout_hi]: the (uncontrollable) timeout is on.
  sem.delay(s, 2 * 4);
  bool timeout_enabled = false;
  for (const auto& t : sem.enabled_instances(s)) {
    if (t.channel_name(m.system).value_or("") == "timeout") {
      timeout_enabled = true;
      EXPECT_FALSE(t.controllable);
      // best == own address: the node heads for a leadership claim.
      sem.fire(s, t);
      EXPECT_EQ(s.locs[m.iut], m.claim);
      break;
    }
  }
  EXPECT_TRUE(timeout_enabled);
  // The invariant forces the timeout by timeout_hi.
  EXPECT_LE(sem.max_delay(s), 2 * 4);
}

TEST(Lep, AllThreePurposesAreControllable) {
  const Lep m = make_lep({.nodes = 3});
  for (const std::string& tp : {lep_tp1(), lep_tp2(), lep_tp3()}) {
    GameSolver solver(m.system, TestPurpose::parse(m.system, tp));
    const auto sol = solver.solve();
    EXPECT_TRUE(sol->winning_from_initial()) << tp;
  }
}

TEST(Lep, StateSpaceGrowsWithNodes) {
  std::size_t prev_keys = 0;
  for (const std::uint32_t n : {2u, 3u, 4u}) {
    const Lep m = make_lep({.nodes = n});
    GameSolver solver(m.system, TestPurpose::parse(m.system, lep_tp1()));
    const auto sol = solver.solve();
    EXPECT_TRUE(sol->winning_from_initial());
    EXPECT_GT(sol->stats().keys, prev_keys);
    prev_keys = sol->stats().keys;
  }
  EXPECT_GT(prev_keys, 100u);
}

}  // namespace
}  // namespace tigat::models
