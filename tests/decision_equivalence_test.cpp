// The compiled-strategy contract: decision::DecisionTable::decide is
// bit-identical to game::Strategy::decide — same kind, same edge, same
// next-decision tick, same rank — on every concrete state, winnable or
// not.  Checked grid-oracle style with seeded util::Rng state sampling
// (strategy-guided walks + uniform fuzz over the discrete keys) on the
// Smart Light and LEP n=3/4, plus the serialization contract: a
// save→load round trip decides identically and corrupted files are
// rejected, never half-loaded.  Safety purposes (`A[] φ`) get the same
// treatment: walk-vs-table equivalence, a .tgs round trip, executor
// verdict parity, and the fingerprint distinguishing purpose kinds so
// a reachability table can never serve a safety purpose.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "decision/compiler.h"
#include "decision/serialize.h"
#include "game/solver.h"
#include "game/strategy.h"
#include "lang/lang.h"
#include "models/lep.h"
#include "models/smart_light.h"
#include "semantics/concrete.h"
#include "support/lep_template.h"
#include "testing/executor.h"
#include "testing/simulated_imp.h"
#include "util/rng.h"

namespace tigat::decision {
namespace {

constexpr std::int64_t kScale = 16;
constexpr std::uint64_t kSeed = 0x7161a5eedULL;

using semantics::ConcreteState;

std::shared_ptr<const game::GameSolution> solve(const tsystem::System& sys,
                                                const std::string& purpose) {
  game::GameSolver solver(sys, tsystem::TestPurpose::parse(sys, purpose));
  return solver.solve();
}

// Uniform fuzz over the reachable discrete keys: random clock grids up
// to a little beyond the maximal constants, so zone boundaries (weak
// vs strict at exact multiples of the scale) and unwinnable corners
// both get sampled.
std::vector<ConcreteState> fuzz_states(const game::GameSolution& solution,
                                       util::Rng& rng, std::size_t count) {
  const auto& g = solution.graph();
  dbm::bound_t max_const = 1;
  for (const dbm::bound_t c : g.max_constants()) max_const = std::max(max_const, c);
  const std::int64_t hi = (static_cast<std::int64_t>(max_const) + 2) * kScale;

  std::vector<ConcreteState> out;
  out.reserve(count);
  for (std::size_t n = 0; n < count; ++n) {
    const auto k = static_cast<std::uint32_t>(
        rng.range(0, static_cast<std::int64_t>(g.key_count()) - 1));
    ConcreteState s;
    s.locs = g.key(k).locs;
    s.data = g.key(k).data;
    s.clocks.assign(g.system().clock_count(), 0);
    for (std::size_t c = 1; c < s.clocks.size(); ++c) {
      // Half the draws snap to the model-unit grid ± 1 tick, where the
      // strict/weak distinctions live.
      if (rng.chance(1, 2)) {
        s.clocks[c] = rng.range(0, hi / kScale) * kScale +
                      rng.range(-1, 1) * (rng.chance(1, 2) ? 1 : 0);
        s.clocks[c] = std::max<std::int64_t>(0, s.clocks[c]);
      } else {
        s.clocks[c] = rng.range(0, hi);
      }
    }
    out.push_back(std::move(s));
  }
  return out;
}

// Strategy-guided walks with adversarial noise: follow the strategy,
// but sometimes delay a random admissible amount or fire a random
// enabled transition instead, so off-path (yet reachable) states are
// covered too.
std::vector<ConcreteState> walk_states(const tsystem::System& sys,
                                       const game::Strategy& strategy,
                                       util::Rng& rng, std::size_t walks,
                                       std::size_t steps) {
  semantics::ConcreteSemantics sem(sys, kScale);
  std::vector<ConcreteState> out;
  for (std::size_t w = 0; w < walks; ++w) {
    auto s = sem.initial();
    out.push_back(s);
    for (std::size_t step = 0; step < steps; ++step) {
      const game::Move move = strategy.decide(s, kScale);
      const std::int64_t max_delay =
          std::min(sem.max_delay(s), std::int64_t{4} * kScale);
      if (move.kind == game::MoveKind::kAction && rng.chance(2, 3)) {
        const auto& e = strategy.solution().graph().edges()[*move.edge];
        if (sem.enabled(s, e.inst)) {
          sem.fire(s, e.inst);
          out.push_back(s);
          continue;
        }
      }
      const auto insts = sem.enabled_instances(s);
      if (!insts.empty() && rng.chance(1, 3)) {
        sem.fire(s, insts[static_cast<std::size_t>(rng.range(
                     0, static_cast<std::int64_t>(insts.size()) - 1))]);
      } else if (max_delay > 0) {
        sem.delay(s, rng.range(1, max_delay));
      } else if (!insts.empty()) {
        sem.fire(s, insts.front());
      } else {
        break;
      }
      out.push_back(s);
    }
  }
  return out;
}

void expect_identical(const game::Strategy& strategy,
                      const DecisionTable& table,
                      const std::vector<ConcreteState>& states) {
  for (const ConcreteState& s : states) {
    const game::Move walk = strategy.decide(s, kScale);
    const game::Move compiled = table.decide(s, kScale);
    ASSERT_EQ(walk, compiled)
        << "kind " << static_cast<int>(walk.kind) << " vs "
        << static_cast<int>(compiled.kind) << ", edge "
        << (walk.edge ? static_cast<int>(*walk.edge) : -1) << " vs "
        << (compiled.edge ? static_cast<int>(*compiled.edge) : -1)
        << ", next " << walk.next_decision_ticks << " vs "
        << compiled.next_decision_ticks << ", rank "
        << (walk.rank ? static_cast<int>(*walk.rank) : -1) << " vs "
        << (compiled.rank ? static_cast<int>(*compiled.rank) : -1);
  }
}

void check_model(const tsystem::System& sys, const std::string& purpose,
                 std::size_t fuzz_count) {
  const auto solution = solve(sys, purpose);
  game::Strategy strategy(solution);
  const DecisionTable table = compile(*solution);
  EXPECT_TRUE(table.matches(sys, solution->purpose()));
  EXPECT_EQ(table.key_count(), solution->graph().key_count());

  util::Rng rng(kSeed);
  expect_identical(strategy, table,
                   walk_states(sys, strategy, rng, 16, 40));
  expect_identical(strategy, table, fuzz_states(*solution, rng, fuzz_count));
}

TEST(DecisionEquivalence, SmartLight) {
  const auto light = models::make_smart_light();
  check_model(light.system, "control: A<> IUT.Bright", 4000);
}

TEST(DecisionEquivalence, LepN3) {
  const auto lep = models::make_lep({.nodes = 3});
  check_model(lep.system, models::lep_tp1(), 2000);
}

TEST(DecisionEquivalence, LepN4) {
  const auto lep = models::make_lep({.nodes = 4});
  check_model(lep.system, models::lep_tp1(), 1000);
}

// Safety tables carry a different leaf shape (the fat delay leaf with
// acts/danger slices) — the walk-vs-table contract must hold for them
// on the same walk + fuzz grid as the reachability tables.
TEST(DecisionEquivalence, SafetySmartLightNeverBright) {
  const auto light = models::make_smart_light();
  check_model(light.system, "control: A[] !IUT.Bright", 4000);
}

TEST(DecisionEquivalence, SafetySmartLightStaysOff) {
  const auto light = models::make_smart_light();
  check_model(light.system, "control: A[] IUT.Off", 2000);
}

// The fingerprint hashes the purpose kind and formula on top of the
// structural model hash, so a reachability .tgs can never silently
// serve a safety purpose over the same formula (or vice versa).
TEST(DecisionEquivalence, FingerprintDistinguishesPurposeKind) {
  const auto light = models::make_smart_light();
  const auto reach_p =
      tsystem::TestPurpose::parse(light.system, "control: A<> !IUT.Bright");
  const auto safe_p =
      tsystem::TestPurpose::parse(light.system, "control: A[] !IUT.Bright");
  EXPECT_NE(model_fingerprint(light.system, reach_p),
            model_fingerprint(light.system, safe_p));

  game::GameSolver solver(light.system, safe_p);
  const DecisionTable table = compile(*solver.solve());
  EXPECT_EQ(table.purpose_kind(), 1u);
  EXPECT_TRUE(table.matches(light.system, safe_p));
  EXPECT_FALSE(table.matches(light.system, reach_p));
}

TEST(DecisionEquivalence, ExecutorVerdictsAndTracesMatch) {
  const auto light = models::make_smart_light();
  const auto plant = models::make_smart_light_plant_only();
  const auto solution = solve(light.system, "control: A<> IUT.Bright");
  game::Strategy strategy(solution);
  const DecisionTable table = compile(*solution);

  for (const std::int64_t latency : {std::int64_t{0}, kScale, 2 * kScale}) {
    testing::SimulatedImplementation imp_a(plant.system, kScale,
                                           {latency, {}});
    testing::SimulatedImplementation imp_b(plant.system, kScale,
                                           {latency, {}});
    testing::TestExecutor walk_exec(strategy, imp_a, kScale);
    testing::TestExecutor table_exec(table, light.system, imp_b, kScale);
    const auto a = walk_exec.run();
    const auto b = table_exec.run();
    EXPECT_EQ(a.verdict, b.verdict) << "latency " << latency;
    EXPECT_EQ(a.trace_string(), b.trace_string()) << "latency " << latency;
    EXPECT_EQ(a.total_ticks, b.total_ticks) << "latency " << latency;
  }
}

// Safety executor parity: the Strategy-backed executor self-derives the
// purpose; the table-backed one is handed it explicitly (a .tgs knows
// its kind but not the formula).  Both must PASS kSafetyMaintained with
// identical traces once the pass budget is outlasted.
TEST(DecisionEquivalence, SafetyExecutorVerdictsAndTracesMatch) {
  const auto light = models::make_smart_light();
  const auto plant = models::make_smart_light_plant_only();
  const auto solution = solve(light.system, "control: A[] IUT.Off");
  game::Strategy strategy(solution);
  const DecisionTable table = compile(*solution);

  testing::ExecutorOptions opts;
  opts.pass_ticks = 200 * kScale;
  testing::ExecutorOptions table_opts = opts;
  table_opts.purpose = solution->purpose();

  testing::SimulatedImplementation imp_a(plant.system, kScale);
  testing::SimulatedImplementation imp_b(plant.system, kScale);
  testing::TestExecutor walk_exec(strategy, imp_a, kScale, opts);
  testing::TestExecutor table_exec(table, light.system, imp_b, kScale,
                                   table_opts);
  const auto a = walk_exec.run();
  const auto b = table_exec.run();
  EXPECT_EQ(a.verdict, testing::Verdict::kPass);
  EXPECT_EQ(a.code, testing::ReasonCode::kSafetyMaintained);
  EXPECT_EQ(b.verdict, a.verdict);
  EXPECT_EQ(b.code, a.code);
  EXPECT_EQ(a.trace_string(), b.trace_string());
  EXPECT_EQ(a.total_ticks, b.total_ticks);
}

// Drive with a reachability plan for Bright while monitoring the
// safety purpose "never Bright": the executor must FAIL with
// kSafetyViolation the moment a SPEC-legal move lands in ¬φ.
TEST(DecisionEquivalence, SafetyViolationVerdict) {
  const auto light = models::make_smart_light();
  const auto plant = models::make_smart_light_plant_only();
  const auto reach = solve(light.system, "control: A<> IUT.Bright");
  game::Strategy strategy(reach);
  const StrategySource source(strategy);

  testing::ExecutorOptions opts;
  opts.purpose =
      tsystem::TestPurpose::parse(light.system, "control: A[] !IUT.Bright");
  testing::SimulatedImplementation imp(plant.system, kScale);
  testing::TestExecutor exec(source, light.system, imp, kScale, opts);
  const auto report = exec.run();
  EXPECT_EQ(report.verdict, testing::Verdict::kFail);
  EXPECT_EQ(report.code, testing::ReasonCode::kSafetyViolation);
}

// A .tgs compiled from the template-elaborated LEP serves the C++-built
// model and vice versa: the fingerprints are identical at the same n —
// and a template re-instantiated at a different n is REJECTED by the
// fingerprint check, so a compiled strategy can never silently serve
// the wrong instance size.
TEST(DecisionEquivalence, TemplatedLepFingerprintMatchesBuilderAndPinsN) {
  const lang::LoadedModel parsed = test_support::load_lep_template(3);
  const auto lep = models::build_lep(3);

  const auto from_template = solve(parsed.system, models::lep_tp1());
  const auto from_builder = solve(lep.system, models::lep_tp1());
  EXPECT_EQ(from_template->stats().keys, from_builder->stats().keys);

  const auto tp_builder =
      tsystem::TestPurpose::parse(lep.system, models::lep_tp1());
  const auto tp_template =
      tsystem::TestPurpose::parse(parsed.system, models::lep_tp1());
  const DecisionTable table_t = compile(*from_template);
  const DecisionTable table_b = compile(*from_builder);
  EXPECT_EQ(table_t.fingerprint(), table_b.fingerprint());
  EXPECT_TRUE(table_t.matches(lep.system, tp_builder));     // cross-served
  EXPECT_TRUE(table_b.matches(parsed.system, tp_template));  // both directions

  // The .tgs round trip preserves the cross-fingerprint.
  const DecisionTable reloaded = from_bytes(to_bytes(table_t));
  EXPECT_TRUE(reloaded.matches(lep.system, tp_builder));

  // Same decisions on the template-elaborated system, walk vs both
  // tables, on seeded fuzz states.
  game::Strategy strategy(from_template);
  util::Rng rng(kSeed);
  expect_identical(strategy, table_b, fuzz_states(*from_template, rng, 1000));

  // Re-instantiated at n = 4, the fingerprint must differ: arrays,
  // edges and processes all changed shape.
  const lang::LoadedModel bigger = test_support::load_lep_template(4);
  EXPECT_FALSE(table_t.matches(
      bigger.system, tsystem::TestPurpose::parse(bigger.system,
                                                 models::lep_tp1())));
  EXPECT_TRUE(table_t.matches(parsed.system, tp_template));
}

TEST(DecisionEquivalence, SerializeRoundTrip) {
  const auto light = models::make_smart_light();
  const auto solution = solve(light.system, "control: A<> IUT.Bright");
  game::Strategy strategy(solution);
  const DecisionTable table = compile(*solution);

  // In-memory round trip: identical bytes and identical decisions.
  const auto bytes = to_bytes(table);
  const DecisionTable reloaded = from_bytes(bytes);
  EXPECT_EQ(to_bytes(reloaded), bytes);
  EXPECT_EQ(reloaded.fingerprint(), table.fingerprint());
  EXPECT_TRUE(reloaded.matches(light.system, solution->purpose()));

  util::Rng rng(kSeed);
  expect_identical(strategy, reloaded, fuzz_states(*solution, rng, 2000));

  // File round trip.
  const std::string path =
      ::testing::TempDir() + "/decision_roundtrip_test.tgs";
  save(table, path);
  const DecisionTable loaded = load(path);
  EXPECT_EQ(to_bytes(loaded), bytes);
  std::remove(path.c_str());
}

// The v2 payload carries the purpose kind and the safety leaf slices;
// a safety table must survive the byte and file round trips exactly
// like a reachability one, still deciding identically to the walk.
TEST(DecisionEquivalence, SafetySerializeRoundTrip) {
  const auto light = models::make_smart_light();
  const auto solution = solve(light.system, "control: A[] !IUT.Bright");
  game::Strategy strategy(solution);
  const DecisionTable table = compile(*solution);
  EXPECT_EQ(table.purpose_kind(), 1u);

  const auto bytes = to_bytes(table);
  const DecisionTable reloaded = from_bytes(bytes);
  EXPECT_EQ(to_bytes(reloaded), bytes);
  EXPECT_EQ(reloaded.purpose_kind(), 1u);
  EXPECT_TRUE(reloaded.matches(light.system, solution->purpose()));

  util::Rng rng(kSeed);
  expect_identical(strategy, reloaded, fuzz_states(*solution, rng, 2000));

  const std::string path =
      ::testing::TempDir() + "/decision_safety_roundtrip_test.tgs";
  save(table, path);
  const DecisionTable loaded = load(path);
  EXPECT_EQ(to_bytes(loaded), bytes);
  std::remove(path.c_str());
}

TEST(DecisionEquivalence, CorruptedFilesAreRejected) {
  const auto light = models::make_smart_light();
  const auto solution = solve(light.system, "control: A<> IUT.Bright");
  const auto bytes = to_bytes(compile(*solution));

  {
    auto bad = bytes;  // wrong magic
    bad[0] = 'X';
    EXPECT_THROW((void)from_bytes(bad), SerializeError);
  }
  {
    auto bad = bytes;  // unsupported version
    bad[4] ^= 0x40;
    EXPECT_THROW((void)from_bytes(bad), SerializeError);
  }
  {
    auto bad = bytes;  // payload bit rot → checksum mismatch
    bad.back() ^= 0x01;
    EXPECT_THROW((void)from_bytes(bad), SerializeError);
  }
  {
    auto bad = bytes;  // truncation
    bad.resize(bad.size() - 9);
    EXPECT_THROW((void)from_bytes(bad), SerializeError);
  }
  {
    auto bad = bytes;  // trailing garbage
    bad.push_back(0xab);
    EXPECT_THROW((void)from_bytes(bad), SerializeError);
  }
  {
    std::vector<std::uint8_t> empty;  // not even a header
    EXPECT_THROW((void)from_bytes(empty), SerializeError);
  }
  EXPECT_THROW((void)load(::testing::TempDir() + "/no_such_file.tgs"),
               SerializeError);
}

}  // namespace
}  // namespace tigat::decision
