// Tests for data declarations (DataLayout/DataState) and the integer
// expression AST.
#include <gtest/gtest.h>

#include "tsystem/data.h"
#include "tsystem/expr.h"

namespace tigat::tsystem {
namespace {

class ExprTest : public ::testing::Test {
 protected:
  ExprTest() {
    a_ = layout_.add_scalar("a", -10, 10, 3);
    b_ = layout_.add_scalar("b", 0, 100, 7);
    arr_ = layout_.add_array("arr", 4, 0, 9, 1);
    state_ = layout_.initial_state();
  }
  DataLayout layout_;
  VarId a_, b_, arr_;
  DataState state_;
};

TEST_F(ExprTest, LayoutSlots) {
  EXPECT_EQ(layout_.slot_count(), 6u);
  EXPECT_EQ(layout_.decl(arr_).size, 4u);
  EXPECT_EQ(layout_.slot_name(0), "a");
  EXPECT_EQ(layout_.slot_name(3), "arr[1]");
  EXPECT_TRUE(layout_.find("arr").has_value());
  EXPECT_FALSE(layout_.find("nope").has_value());
}

TEST_F(ExprTest, InitialState) {
  EXPECT_EQ(state_.get(0), 3);
  EXPECT_EQ(state_.get(1), 7);
  for (std::uint32_t k = 0; k < 4; ++k) EXPECT_EQ(state_.get(2 + k), 1);
}

TEST_F(ExprTest, ArithmeticAndComparison) {
  const Expr e = (Expr::var(a_) + Expr::var(b_)) * lit(2);
  EXPECT_EQ(e.eval(state_, layout_), 20);
  EXPECT_EQ((Expr::var(a_) < Expr::var(b_)).eval(state_, layout_), 1);
  EXPECT_EQ((Expr::var(a_) == lit(3)).eval(state_, layout_), 1);
  EXPECT_EQ((Expr::var(a_) != lit(3)).eval(state_, layout_), 0);
  EXPECT_EQ((lit(7) % lit(4)).eval(state_, layout_), 3);
  EXPECT_EQ((-Expr::var(a_)).eval(state_, layout_), -3);
}

TEST_F(ExprTest, BooleansShortCircuitSemantics) {
  const Expr t = lit(1);
  const Expr f = lit(0);
  EXPECT_EQ((t && f).eval(state_, layout_), 0);
  EXPECT_EQ((t || f).eval(state_, layout_), 1);
  EXPECT_EQ((!t).eval(state_, layout_), 0);
  // Short circuit: rhs division by zero must not fire.
  const Expr danger = lit(1) / lit(0);
  EXPECT_EQ((f && danger).eval(state_, layout_), 0);
  EXPECT_EQ((t || danger).eval(state_, layout_), 1);
}

TEST_F(ExprTest, DivisionByZeroThrows) {
  EXPECT_THROW((void)(lit(1) / lit(0)).eval(state_, layout_), ModelError);
  EXPECT_THROW((void)(lit(1) % lit(0)).eval(state_, layout_), ModelError);
}

TEST_F(ExprTest, ArrayAccess) {
  state_.set(layout_.slot_of(arr_, 2), 5);
  const Expr e = Expr::var(arr_, lit(2));
  EXPECT_EQ(e.eval(state_, layout_), 5);
  const Expr via_index = Expr::var(arr_, Expr::var(a_) - lit(1));  // arr[2]
  EXPECT_EQ(via_index.eval(state_, layout_), 5);
}

TEST_F(ExprTest, ArrayIndexOutOfRangeThrows) {
  EXPECT_THROW((void)Expr::var(arr_, lit(4)).eval(state_, layout_), ModelError);
  EXPECT_THROW((void)Expr::var(arr_, lit(-1)).eval(state_, layout_),
               ModelError);
}

TEST_F(ExprTest, ForallExists) {
  // arr = {1,1,1,1} initially.
  const Expr all_one =
      Expr::forall(0, 3, Expr::var(arr_, Expr::bound_var(0)) == lit(1));
  EXPECT_EQ(all_one.eval(state_, layout_), 1);
  state_.set(layout_.slot_of(arr_, 3), 2);
  EXPECT_EQ(all_one.eval(state_, layout_), 0);
  const Expr some_two =
      Expr::exists(0, 3, Expr::var(arr_, Expr::bound_var(0)) == lit(2));
  EXPECT_EQ(some_two.eval(state_, layout_), 1);
}

TEST_F(ExprTest, NestedQuantifiersUseDeBruijnDepth) {
  // exists i: forall j: arr[i] >= arr[j]  (some maximal element) — true.
  const Expr inner = Expr::var(arr_, Expr::bound_var(1)) >=
                     Expr::var(arr_, Expr::bound_var(0));
  const Expr formula = Expr::exists(0, 3, Expr::forall(0, 3, inner));
  EXPECT_EQ(formula.eval(state_, layout_), 1);
  // A strictly-greater variant is false on the all-equal array.
  const Expr strict = Expr::exists(
      0, 3,
      Expr::forall(0, 3, Expr::var(arr_, Expr::bound_var(1)) >
                             Expr::var(arr_, Expr::bound_var(0))));
  EXPECT_EQ(strict.eval(state_, layout_), 0);
}

TEST_F(ExprTest, CheckedStoreEnforcesBounds) {
  layout_.checked_store(state_, a_, 0, -10);
  EXPECT_EQ(state_.get(0), -10);
  EXPECT_THROW(layout_.checked_store(state_, a_, 0, 11), ModelError);
  EXPECT_THROW(layout_.checked_store(state_, arr_, 5, 1), ModelError);
}

TEST_F(ExprTest, DuplicateAndBadDeclarationsThrow) {
  EXPECT_THROW(layout_.add_scalar("a", 0, 1, 0), ModelError);
  EXPECT_THROW(layout_.add_scalar("z", 5, 1, 5), ModelError);
  EXPECT_THROW(layout_.add_scalar("y", 0, 1, 2), ModelError);
  EXPECT_THROW(layout_.add_array("w", 0, 0, 1, 0), ModelError);
}

TEST_F(ExprTest, HashAndEquality) {
  const DataState s1 = layout_.initial_state();
  DataState s2 = layout_.initial_state();
  EXPECT_EQ(s1, s2);
  EXPECT_EQ(s1.hash(), s2.hash());
  s2.set(0, 9);
  EXPECT_NE(s1, s2);
}

TEST_F(ExprTest, ToStringRoundtrip) {
  const Expr e = (Expr::var(a_) + lit(1)) * Expr::var(arr_, lit(0)) >= lit(4);
  const std::string s = e.to_string(layout_);
  EXPECT_NE(s.find("a"), std::string::npos);
  EXPECT_NE(s.find("arr[0]"), std::string::npos);
  EXPECT_NE(s.find(">="), std::string::npos);
  const Expr q = Expr::forall(0, 3, Expr::var(arr_, Expr::bound_var(0)) == lit(1));
  EXPECT_NE(q.to_string(layout_).find("forall (i0 : 0..3)"), std::string::npos);
}

TEST_F(ExprTest, NullExprIsTrueGuard) {
  const Expr none;
  EXPECT_TRUE(none.is_null());
  EXPECT_TRUE(none.eval_bool(state_, layout_));
}

}  // namespace
}  // namespace tigat::tsystem
