// Property tests: every zone operator is compared against the
// discretised oracle on randomized bounded zones.  The oracle's
// sampling scheme is exact for integer-constant zones (see
// tests/support/grid_oracle.h), so any mismatch is a real bug.
#include <gtest/gtest.h>

#include "dbm/dbm.h"
#include "dbm/federation.h"
#include "support/grid_oracle.h"
#include "util/rng.h"

namespace tigat::dbm {
namespace {

using test::GridOracle;
using test::Point;

constexpr std::int32_t kMaxConst = 4;

struct Params {
  std::uint32_t dim;
  std::uint64_t seed;
};

class DbmPropertyTest : public ::testing::TestWithParam<Params> {};

TEST_P(DbmPropertyTest, CloseIsCanonicalAndSound) {
  const auto [dim, seed] = GetParam();
  GridOracle grid(dim, kMaxConst);
  util::Rng rng(seed);
  for (int iter = 0; iter < 40; ++iter) {
    const Dbm z = grid.random_zone(rng, kMaxConst, 5);
    // Canonical: re-closing changes nothing.
    Dbm reclosed(z);
    ASSERT_TRUE(reclosed.close());
    EXPECT_EQ(reclosed.relation(z), Relation::kEqual) << z.to_string();
  }
}

TEST_P(DbmPropertyTest, DownMatchesOracle) {
  const auto [dim, seed] = GetParam();
  GridOracle grid(dim, kMaxConst);
  util::Rng rng(seed);
  for (int iter = 0; iter < 30; ++iter) {
    const Dbm z = grid.random_zone(rng, kMaxConst, 5);
    Dbm d(z);
    d.down();
    const Fed f(z);
    for (const Point& p : grid.sample_points()) {
      EXPECT_EQ(d.contains_point(p, GridOracle::kScale), grid.in_down(f, p))
          << "zone: " << z.to_string();
    }
    // down must also be canonical.
    Dbm reclosed(d);
    ASSERT_TRUE(reclosed.close());
    EXPECT_EQ(reclosed.relation(d), Relation::kEqual);
  }
}

TEST_P(DbmPropertyTest, UpMatchesOracle) {
  const auto [dim, seed] = GetParam();
  GridOracle grid(dim, kMaxConst);
  util::Rng rng(seed);
  for (int iter = 0; iter < 30; ++iter) {
    const Dbm z = grid.random_zone(rng, kMaxConst, 5);
    Dbm u(z);
    u.up();
    const Fed f(z);
    for (const Point& p : grid.sample_points()) {
      EXPECT_EQ(u.contains_point(p, GridOracle::kScale), grid.in_up(f, p))
          << "zone: " << z.to_string();
    }
  }
}

TEST_P(DbmPropertyTest, IntersectionMatchesOracle) {
  const auto [dim, seed] = GetParam();
  GridOracle grid(dim, kMaxConst);
  util::Rng rng(seed);
  for (int iter = 0; iter < 40; ++iter) {
    const Dbm a = grid.random_zone(rng, kMaxConst, 4);
    const Dbm b = grid.random_zone(rng, kMaxConst, 4);
    Dbm c(a);
    const bool nonempty = c.intersect_with(b);
    for (const Point& p : grid.sample_points()) {
      const bool expect = a.contains_point(p, GridOracle::kScale) &&
                          b.contains_point(p, GridOracle::kScale);
      EXPECT_EQ(nonempty && c.contains_point(p, GridOracle::kScale), expect)
          << a.to_string() << " ∩ " << b.to_string();
    }
  }
}

TEST_P(DbmPropertyTest, SubtractMatchesOracleAndIsDisjoint) {
  const auto [dim, seed] = GetParam();
  GridOracle grid(dim, kMaxConst);
  util::Rng rng(seed);
  for (int iter = 0; iter < 40; ++iter) {
    const Dbm a = grid.random_zone(rng, kMaxConst, 4);
    const Dbm b = grid.random_zone(rng, kMaxConst, 4);
    const auto pieces = subtract(a, b);
    for (const Point& p : grid.sample_points()) {
      const bool expect = a.contains_point(p, GridOracle::kScale) &&
                          !b.contains_point(p, GridOracle::kScale);
      int covering = 0;
      for (const Dbm& piece : pieces) {
        covering += piece.contains_point(p, GridOracle::kScale);
      }
      EXPECT_EQ(covering, expect ? 1 : 0)
          << a.to_string() << " minus " << b.to_string()
          << " (covering=" << covering << ")";
    }
  }
}

TEST_P(DbmPropertyTest, ResetMatchesOracle) {
  const auto [dim, seed] = GetParam();
  GridOracle grid(dim, kMaxConst);
  util::Rng rng(seed);
  for (int iter = 0; iter < 25; ++iter) {
    const Dbm z = grid.random_zone(rng, kMaxConst, 4);
    const auto k = static_cast<std::uint32_t>(rng.range(1, dim - 1));
    Dbm r(z);
    r.reset(k);
    for (const Point& p : grid.sample_points()) {
      EXPECT_EQ(r.contains_point(p, GridOracle::kScale), grid.in_reset(z, k, p))
          << z.to_string() << " reset x" << k;
    }
  }
}

TEST_P(DbmPropertyTest, FreeMatchesOracle) {
  const auto [dim, seed] = GetParam();
  GridOracle grid(dim, kMaxConst);
  util::Rng rng(seed);
  for (int iter = 0; iter < 25; ++iter) {
    const Dbm z = grid.random_zone(rng, kMaxConst, 4);
    const auto k = static_cast<std::uint32_t>(rng.range(1, dim - 1));
    Dbm f(z);
    f.free(k);
    for (const Point& p : grid.sample_points()) {
      EXPECT_EQ(f.contains_point(p, GridOracle::kScale), grid.in_free(z, k, p))
          << z.to_string() << " free x" << k;
    }
  }
}

TEST_P(DbmPropertyTest, RelationAgreesWithPointSets) {
  const auto [dim, seed] = GetParam();
  GridOracle grid(dim, kMaxConst);
  util::Rng rng(seed);
  for (int iter = 0; iter < 40; ++iter) {
    const Dbm a = grid.random_zone(rng, kMaxConst, 4);
    const Dbm b = grid.random_zone(rng, kMaxConst, 4);
    bool sub = true;
    bool sup = true;
    for (const Point& p : grid.sample_points()) {
      const bool ina = a.contains_point(p, GridOracle::kScale);
      const bool inb = b.contains_point(p, GridOracle::kScale);
      if (ina && !inb) sub = false;
      if (inb && !ina) sup = false;
    }
    // The sampling grid is exact for these zones, so the DBM relation
    // coincides with sample-set inclusion both ways.
    EXPECT_EQ(a.is_subset_of(b), sub) << a.to_string() << " vs " << b.to_string();
    EXPECT_EQ(b.is_subset_of(a), sup) << a.to_string() << " vs " << b.to_string();
  }
}

TEST_P(DbmPropertyTest, ExtrapolationOnlyLoosens) {
  const auto [dim, seed] = GetParam();
  GridOracle grid(dim, kMaxConst);
  util::Rng rng(seed);
  std::vector<bound_t> max_consts(dim, 2);
  max_consts[0] = 0;
  for (int iter = 0; iter < 40; ++iter) {
    const Dbm z = grid.random_zone(rng, kMaxConst, 4);
    Dbm e(z);
    e.extrapolate_max_bounds(max_consts);
    EXPECT_TRUE(z.is_subset_of(e)) << z.to_string() << " vs " << e.to_string();
    // Idempotent.
    Dbm e2(e);
    e2.extrapolate_max_bounds(max_consts);
    EXPECT_EQ(e2.relation(e), Relation::kEqual);
  }
}

INSTANTIATE_TEST_SUITE_P(Dims, DbmPropertyTest,
                         ::testing::Values(Params{2, 11}, Params{2, 12},
                                           Params{3, 21}, Params{3, 22},
                                           Params{3, 23}, Params{4, 31},
                                           Params{4, 32}),
                         [](const auto& info) {
                           return "dim" + std::to_string(info.param.dim) +
                                  "_seed" + std::to_string(info.param.seed);
                         });

}  // namespace
}  // namespace tigat::dbm
