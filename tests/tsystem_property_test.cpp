// Tests for the test-purpose parser and StateFormula evaluation.
#include <gtest/gtest.h>

#include "tsystem/property.h"
#include "tsystem/system.h"

namespace tigat::tsystem {
namespace {

class PropertyTest : public ::testing::Test {
 protected:
  PropertyTest() : sys_("lep") {
    sys_.add_clock("x");
    better_ = sys_.data().add_scalar("betterInfo", 0, 1, 0);
    in_use_ = sys_.data().add_array("inUse", 3, 0, 1, 0);
    Process& iut = sys_.add_process("IUT", Controllability::kUncontrollable);
    idle_ = iut.add_location("idle");
    fwd_ = iut.add_location("forward");
    Process& env = sys_.add_process("Env", Controllability::kControllable);
    env.add_location("e0");
    sys_.finalize();
    state_ = sys_.data().initial_state();
  }

  [[nodiscard]] bool eval(const TestPurpose& p,
                          std::initializer_list<LocId> locs) const {
    const std::vector<LocId> l(locs);
    return p.formula.eval(l, state_, sys_.data());
  }

  System sys_;
  VarId better_, in_use_;
  LocId idle_ = 0, fwd_ = 0;
  DataState state_;
};

TEST_F(PropertyTest, ParseLocationAtom) {
  const auto p = TestPurpose::parse(sys_, "control: A<> IUT.forward");
  EXPECT_EQ(p.kind, PurposeKind::kReach);
  EXPECT_TRUE(eval(p, {fwd_, 0}));
  EXPECT_FALSE(eval(p, {idle_, 0}));
}

TEST_F(PropertyTest, ParseSafetyKind) {
  const auto p = TestPurpose::parse(sys_, "control: A[] IUT.idle");
  EXPECT_EQ(p.kind, PurposeKind::kSafety);
}

TEST_F(PropertyTest, ParsePaperTP1) {
  const auto p = TestPurpose::parse(
      sys_, "control: A<> (IUT.betterInfo == 1) and IUT.forward");
  EXPECT_FALSE(eval(p, {fwd_, 0}));  // betterInfo still 0
  state_.set(0, 1);
  EXPECT_TRUE(eval(p, {fwd_, 0}));
  EXPECT_FALSE(eval(p, {idle_, 0}));
}

TEST_F(PropertyTest, ParsePaperTP2ForallOverArray) {
  const auto p = TestPurpose::parse(
      sys_, "control: A<> forall (i : inUse) inUse[i] == 1");
  EXPECT_FALSE(eval(p, {idle_, 0}));
  for (std::uint32_t k = 0; k < 3; ++k) {
    state_.set(sys_.data().slot_of(in_use_, k), 1);
  }
  EXPECT_TRUE(eval(p, {idle_, 0}));
}

TEST_F(PropertyTest, ParsePaperTP3Conjunction) {
  const auto p = TestPurpose::parse(
      sys_,
      "control: A<> (forall (i : 0..2) inUse[i] == 1) && IUT.idle");
  for (std::uint32_t k = 0; k < 3; ++k) {
    state_.set(sys_.data().slot_of(in_use_, k), 1);
  }
  EXPECT_TRUE(eval(p, {idle_, 0}));
  EXPECT_FALSE(eval(p, {fwd_, 0}));
  state_.set(sys_.data().slot_of(in_use_, 1), 0);
  EXPECT_FALSE(eval(p, {idle_, 0}));
}

TEST_F(PropertyTest, ExistsAndNegation) {
  const auto p = TestPurpose::parse(
      sys_, "control: A<> !(exists (i : inUse) inUse[i] == 1)");
  EXPECT_TRUE(eval(p, {idle_, 0}));
  state_.set(sys_.data().slot_of(in_use_, 2), 1);
  EXPECT_FALSE(eval(p, {idle_, 0}));
}

TEST_F(PropertyTest, QualifiedVariableAccess) {
  // Paper style: IUT.betterInfo resolves to the (global) variable.
  const auto p = TestPurpose::parse(sys_, "control: A<> IUT.betterInfo == 1");
  EXPECT_FALSE(eval(p, {idle_, 0}));
  state_.set(0, 1);
  EXPECT_TRUE(eval(p, {idle_, 0}));
}

TEST_F(PropertyTest, BareExpressionMeansNonZero) {
  const auto p = TestPurpose::parse(sys_, "control: A<> betterInfo");
  EXPECT_FALSE(eval(p, {idle_, 0}));
  state_.set(0, 1);
  EXPECT_TRUE(eval(p, {idle_, 0}));
}

TEST_F(PropertyTest, OrAndPrecedence) {
  // && binds tighter than ||.
  const auto p = TestPurpose::parse(
      sys_, "control: A<> IUT.forward || IUT.idle && betterInfo == 1");
  EXPECT_TRUE(eval(p, {fwd_, 0}));                 // left disjunct
  EXPECT_FALSE(eval(p, {idle_, 0}));               // betterInfo == 0
  state_.set(0, 1);
  EXPECT_TRUE(eval(p, {idle_, 0}));
}

TEST_F(PropertyTest, ArithmeticInComparisons) {
  const auto p = TestPurpose::parse(
      sys_, "control: A<> inUse[0] + inUse[1] + inUse[2] >= 2");
  EXPECT_FALSE(eval(p, {idle_, 0}));
  state_.set(sys_.data().slot_of(in_use_, 0), 1);
  state_.set(sys_.data().slot_of(in_use_, 2), 1);
  EXPECT_TRUE(eval(p, {idle_, 0}));
}

TEST_F(PropertyTest, ParenthesizedComparisonDisambiguation) {
  const auto p = TestPurpose::parse(
      sys_, "control: A<> (inUse[0] + 1) * 2 == 2");
  EXPECT_TRUE(eval(p, {idle_, 0}));
}

TEST_F(PropertyTest, ParseErrors) {
  EXPECT_THROW(TestPurpose::parse(sys_, "A<> IUT.idle"), ModelError);
  EXPECT_THROW(TestPurpose::parse(sys_, "control: E<> IUT.idle"), ModelError);
  EXPECT_THROW(TestPurpose::parse(sys_, "control: A<> IUT.nowhere"),
               ModelError);
  EXPECT_THROW(TestPurpose::parse(sys_, "control: A<> unknownVar == 1"),
               ModelError);
  EXPECT_THROW(TestPurpose::parse(sys_, "control: A<> IUT.idle &&"),
               ModelError);
  EXPECT_THROW(TestPurpose::parse(sys_, "control: A<> forall (i : nope) 1"),
               ModelError);
  EXPECT_THROW(TestPurpose::parse(sys_, "control: A<> IUT.idle extra"),
               ModelError);
}

TEST_F(PropertyTest, ToStringMentionsAtoms) {
  const auto p = TestPurpose::parse(
      sys_, "control: A<> (IUT.betterInfo == 1) && IUT.forward");
  const std::string s = p.formula.to_string(sys_);
  EXPECT_NE(s.find("IUT.forward"), std::string::npos);
  EXPECT_NE(s.find("betterInfo"), std::string::npos);
}

TEST_F(PropertyTest, ProgrammaticConstruction) {
  const auto iut = *sys_.find_process("IUT");
  const TestPurpose p = TestPurpose::reach(
      StateFormula::conj(StateFormula::location(iut, fwd_),
                         StateFormula::data(Expr::var(better_) == lit(1))),
      "tp1");
  EXPECT_FALSE(eval(p, {fwd_, 0}));
  state_.set(0, 1);
  EXPECT_TRUE(eval(p, {fwd_, 0}));
}

}  // namespace
}  // namespace tigat::tsystem
