// Tests for the concrete TIOTS interpreter on the Smart Light model.
#include <gtest/gtest.h>

#include "models/smart_light.h"
#include "semantics/concrete.h"

namespace tigat::semantics {
namespace {

using models::SmartLight;
using models::make_smart_light;

class ConcreteTest : public ::testing::Test {
 protected:
  ConcreteTest() : m_(make_smart_light()), sem_(m_.system, /*scale=*/10) {}

  // Finds the unique enabled instance on the given channel.
  TransitionInstance instance_on(const ConcreteState& s,
                                 const std::string& chan) const {
    TransitionInstance found;
    int hits = 0;
    for (const auto& t : sem_.enabled_instances(s)) {
      if (const auto c = t.channel_name(m_.system); c && *c == chan) {
        found = t;
        ++hits;
      }
    }
    EXPECT_EQ(hits, 1) << "channel " << chan;
    return found;
  }

  SmartLight m_;
  ConcreteSemantics sem_;
};

TEST_F(ConcreteTest, InitialState) {
  const ConcreteState s = sem_.initial();
  EXPECT_EQ(s.locs[m_.iut], m_.loc_off);
  EXPECT_EQ(s.locs[m_.user], m_.user_init);
  EXPECT_EQ(s.clocks[m_.x.id], 0);
  EXPECT_TRUE(sem_.invariant_holds(s));
}

TEST_F(ConcreteTest, NoTouchBeforeReactTime) {
  const ConcreteState s = sem_.initial();
  // z >= Treact(=1) gates touch; at t=0 nothing is enabled.
  EXPECT_TRUE(sem_.enabled_instances(s).empty());
}

TEST_F(ConcreteTest, TouchActivatesViaL1WhenFresh) {
  ConcreteState s = sem_.initial();
  sem_.delay(s, 10);  // 1.0 time unit: z == Treact
  const auto touch = instance_on(s, "touch");
  EXPECT_TRUE(touch.controllable);
  sem_.fire(s, touch);
  EXPECT_EQ(s.locs[m_.iut], m_.l1);  // x = 1 < Tidle
  EXPECT_EQ(s.clocks[m_.x.id], 0);   // reset
  EXPECT_EQ(s.clocks[m_.tp.id], 0);
  EXPECT_EQ(s.locs[m_.user], m_.user_work);
}

TEST_F(ConcreteTest, TouchAfterIdleGoesToL5) {
  ConcreteState s = sem_.initial();
  sem_.delay(s, 200);  // 20 units = Tidle
  sem_.fire(s, instance_on(s, "touch"));
  EXPECT_EQ(s.locs[m_.iut], m_.l5);
}

TEST_F(ConcreteTest, InvariantBoundsDelayInOutputWindow) {
  ConcreteState s = sem_.initial();
  sem_.delay(s, 10);
  sem_.fire(s, instance_on(s, "touch"));  // → L1, Tp = 0
  EXPECT_EQ(sem_.max_delay(s), 20);       // Tp ≤ 2 → 2.0 units
  sem_.delay(s, 20);
  EXPECT_EQ(sem_.max_delay(s), 0);
  EXPECT_FALSE(sem_.can_delay(s, 1));
}

TEST_F(ConcreteTest, UncontrollableOutputsOfferedInWindow) {
  ConcreteState s = sem_.initial();
  sem_.delay(s, 200);
  sem_.fire(s, instance_on(s, "touch"));  // → L5
  sem_.delay(s, 7);                       // anywhere inside the window
  // L5 offers dim! and bright! — both uncontrollable.
  bool saw_dim = false, saw_bright = false;
  for (const auto& t : sem_.enabled_instances(s)) {
    const auto c = t.channel_name(m_.system);
    if (c && *c == "dim") {
      saw_dim = true;
      EXPECT_FALSE(t.controllable);
    }
    if (c && *c == "bright") {
      saw_bright = true;
      EXPECT_FALSE(t.controllable);
    }
  }
  EXPECT_TRUE(saw_dim);
  EXPECT_TRUE(saw_bright);
}

TEST_F(ConcreteTest, BrightViaDoubleTouch) {
  ConcreteState s = sem_.initial();
  sem_.delay(s, 10);
  sem_.fire(s, instance_on(s, "touch"));  // → L1
  sem_.delay(s, 10);                      // z = 1 again, Tp = 1 ≤ 2
  sem_.fire(s, instance_on(s, "touch"));  // → L2
  EXPECT_EQ(s.locs[m_.iut], m_.l2);
  sem_.delay(s, 5);
  sem_.fire(s, instance_on(s, "bright"));
  EXPECT_EQ(s.locs[m_.iut], m_.loc_bright);
  EXPECT_EQ(s.clocks[m_.x.id], 0);
}

TEST_F(ConcreteTest, SlowTouchOnDimMayRefuseToTurnOff) {
  ConcreteState s = sem_.initial();
  sem_.delay(s, 10);
  sem_.fire(s, instance_on(s, "touch"));
  sem_.fire(s, instance_on(s, "dim"));  // → Dim at once
  EXPECT_EQ(s.locs[m_.iut], m_.loc_dim);
  sem_.delay(s, 40);  // x = 4 = Tsw → slow touch
  sem_.fire(s, instance_on(s, "touch"));
  EXPECT_EQ(s.locs[m_.iut], m_.l3);
  // The light can answer off! …or dim! (refusal) — both present.
  bool off = false, dim = false;
  for (const auto& t : sem_.enabled_instances(s)) {
    const auto c = t.channel_name(m_.system);
    if (c && *c == "off") off = true;
    if (c && *c == "dim") dim = true;
  }
  EXPECT_TRUE(off);
  EXPECT_TRUE(dim);
}

TEST_F(ConcreteTest, GuardBoundaryStrictness) {
  // x < Tidle vs x >= Tidle at exactly x = Tidle: only L5 branch.
  ConcreteState s = sem_.initial();
  sem_.delay(s, 200);  // x = 20.0 exactly
  const auto touch = instance_on(s, "touch");
  sem_.fire(s, touch);
  EXPECT_EQ(s.locs[m_.iut], m_.l5);
  // One tick earlier: only the L1 branch.
  ConcreteState s2 = sem_.initial();
  sem_.delay(s2, 199);
  sem_.fire(s2, instance_on(s2, "touch"));
  EXPECT_EQ(s2.locs[m_.iut], m_.l1);
}

TEST_F(ConcreteTest, DeterminismOneInstancePerChannel) {
  // In every visited state, each channel has at most one enabled
  // instance (the SPEC determinism hypothesis of Sec. 2.2).
  ConcreteState s = sem_.initial();
  const auto check = [&](const ConcreteState& st) {
    std::vector<std::string> seen;
    for (const auto& t : sem_.enabled_instances(st)) {
      if (const auto c = t.channel_name(m_.system)) {
        EXPECT_EQ(std::count(seen.begin(), seen.end(), *c), 0)
            << "duplicate enabled instance on " << *c;
        seen.push_back(*c);
      }
    }
  };
  check(s);
  sem_.delay(s, 10);
  check(s);
  sem_.fire(s, instance_on(s, "touch"));
  check(s);
}

TEST_F(ConcreteTest, ToStringIsInformative) {
  const ConcreteState s = sem_.initial();
  const std::string str = sem_.to_string(s);
  EXPECT_NE(str.find("IUT.Off"), std::string::npos);
  EXPECT_NE(str.find("User.Init"), std::string::npos);
  EXPECT_NE(str.find("x="), std::string::npos);
}

}  // namespace
}  // namespace tigat::semantics
