// Exit-code taxonomy of the run_model CLI, pinned end to end against
// the real binary (TIGAT_RUN_MODEL_BIN, wired in CMakeLists.txt):
//
//   0  all purposes winnable / campaign PASS
//   1  usage error, model error, or unwinnable purpose
//   2  I/O error
//   3  solver resource limit
//   4  campaign FAIL
//   5  campaign FLAKY / UNRESPONSIVE
//
// The regression this guards: an unsupported purpose/option combo must
// exit with the usage/model code 1 — never leak out as the solver-limit
// code 3 — and safety purposes (`control: A[] φ`) go through the whole
// solve → compile → serve → campaign pipeline with the same taxonomy
// as reachability ones.  The smart_light_safety watchdog model solves
// in milliseconds, so driving the real binary stays cheap.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>

#include <sys/wait.h>

namespace {

const std::string kBin = TIGAT_RUN_MODEL_BIN;
const std::string kSafetyModel =
    std::string(TIGAT_MODEL_DIR) + "/smart_light_safety.tg";
const std::string kReachModel =
    std::string(TIGAT_MODEL_DIR) + "/smart_light.tg";

int run_cli(const std::string& args) {
  const std::string cmd = kBin + " " + args + " >/dev/null 2>&1";
  const int rc = std::system(cmd.c_str());
  return WIFEXITED(rc) ? WEXITSTATUS(rc) : -1;
}

TEST(RunModelCli, NoArgumentsIsUsageError) {
  EXPECT_EQ(run_cli(""), 1);
}

TEST(RunModelCli, MissingModelFileIsModelError) {
  EXPECT_EQ(run_cli("/no/such/model.tg"), 1);
}

TEST(RunModelCli, MalformedPurposeIsModelError) {
  EXPECT_EQ(run_cli(kSafetyModel + " \"control: A[] IUT.Nowhere\""), 1);
}

TEST(RunModelCli, WinnableSafetyPurposeSolves) {
  EXPECT_EQ(run_cli(kSafetyModel), 0);
}

// `A[] IUT.Off` is unwinnable (the lamp starts On): must be the
// usage/model code 1, not the solver-limit code 3.
TEST(RunModelCli, UnwinnableSafetyPurposeIsNotSolverLimit) {
  EXPECT_EQ(run_cli(kSafetyModel + " \"control: A[] IUT.Off\""), 1);
}

TEST(RunModelCli, OutOfRangeMutantIsUsageError) {
  EXPECT_EQ(run_cli(kSafetyModel + " --runs=1 --mutant=99"), 1);
}

TEST(RunModelCli, SafetyCampaignPassesOnConformingIut) {
  EXPECT_EQ(run_cli(kSafetyModel + " --runs=1 --pass-ticks=2000"), 0);
}

// Mutant 1 emits off! before its watchdog window opens — a sound
// safety FAIL, surfaced as the campaign FAIL code 4.
TEST(RunModelCli, SafetyCampaignFailsOnMutant) {
  EXPECT_EQ(run_cli(kSafetyModel + " --runs=1 --pass-ticks=2000 --mutant=1"),
            4);
}

// A safety .tgs round-trips through the serving path against its own
// model, and is rejected (code 1, fingerprint mismatch) against a
// different one.
TEST(RunModelCli, SafetyStrategyServesAndPinsItsModel) {
  const std::string tgs =
      ::testing::TempDir() + "/run_model_cli_safety.tgs";
  ASSERT_EQ(run_cli(kSafetyModel + " --strategy-out=" + tgs), 0);
  EXPECT_EQ(run_cli(kSafetyModel + " --strategy-in=" + tgs), 0);
  EXPECT_EQ(run_cli(kReachModel + " --strategy-in=" + tgs), 1);
  std::remove(tgs.c_str());
}

// ── subcommand forms ────────────────────────────────────────────────
// `run_model [solve|serve|run|campaign|explain] MODEL` maps 1:1 onto
// the flag interface and keeps the exit taxonomy; the bare legacy form
// above stays supported verbatim.

TEST(RunModelCli, SolveSubcommandMatchesLegacyForm) {
  EXPECT_EQ(run_cli("solve " + kSafetyModel), 0);
  EXPECT_EQ(run_cli("solve " + kSafetyModel + " \"control: A[] IUT.Off\""),
            1);
}

TEST(RunModelCli, UnknownSubcommandIsUsageError) {
  EXPECT_EQ(run_cli("frobnicate " + kSafetyModel), 1);
}

TEST(RunModelCli, SolveSubcommandRejectsCampaignFlags) {
  EXPECT_EQ(run_cli("solve " + kSafetyModel + " --runs=1"), 1);
}

TEST(RunModelCli, ServeSubcommandRequiresStrategyIn) {
  EXPECT_EQ(run_cli("serve " + kSafetyModel), 1);
}

TEST(RunModelCli, SubcommandPipelineRoundTrips) {
  const std::string tgs =
      ::testing::TempDir() + "/run_model_cli_sub.tgs";
  ASSERT_EQ(run_cli("solve " + kSafetyModel + " --strategy-out=" + tgs), 0);
  EXPECT_EQ(run_cli("serve " + kSafetyModel + " --strategy-in=" + tgs), 0);
  EXPECT_EQ(run_cli("run " + kSafetyModel + " --strategy-in=" + tgs +
                    " --pass-ticks=2000"),
            0);
  EXPECT_EQ(run_cli("campaign " + kSafetyModel + " --strategy-in=" + tgs +
                    " --runs=2 --pass-ticks=2000"),
            0);
  EXPECT_EQ(run_cli("campaign " + kSafetyModel + " --strategy-in=" + tgs +
                    " --runs=1 --pass-ticks=2000 --mutant=1"),
            4);
  std::remove(tgs.c_str());
}

// ── .tgs format versioning at the CLI boundary ──────────────────────

// An old-format (v1/v2) strategy file is a "re-solve to migrate"
// usage/model condition — exit 1 — never the I/O/corruption code 2.
TEST(RunModelCli, LegacyStrategyFileSaysMigrateNotCorrupt) {
  const std::string tgs = ::testing::TempDir() + "/run_model_cli_v2.tgs";
  {
    // A bare v2 header: magic "TGSD", version 2, zeroed checksum/size.
    unsigned char stub[24] = {'T', 'G', 'S', 'D', 2, 0, 0, 0};
    std::FILE* f = std::fopen(tgs.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite(stub, 1, sizeof stub, f), sizeof stub);
    std::fclose(f);
  }
  EXPECT_EQ(run_cli("serve " + kSafetyModel + " --strategy-in=" + tgs), 1);
  std::remove(tgs.c_str());
}

// A corrupt v3 image (bad checksum) is the I/O/corruption code 2.
TEST(RunModelCli, CorruptStrategyFileIsIoError) {
  const std::string tgs =
      ::testing::TempDir() + "/run_model_cli_corrupt.tgs";
  ASSERT_EQ(run_cli("solve " + kSafetyModel + " --strategy-out=" + tgs), 0);
  {
    std::FILE* f = std::fopen(tgs.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fseek(f, -1, SEEK_END), 0);
    const int c = std::fgetc(f);
    ASSERT_NE(c, EOF);
    ASSERT_EQ(std::fseek(f, -1, SEEK_END), 0);
    std::fputc(c ^ 0x01, f);
    std::fclose(f);
  }
  EXPECT_EQ(run_cli("serve " + kSafetyModel + " --strategy-in=" + tgs), 2);
  std::remove(tgs.c_str());
}

}  // namespace
