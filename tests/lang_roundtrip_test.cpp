// Cross-validation of the .tg frontend against the hand-built C++
// models: parsing examples/models/smart_light.tg and lep.tg must give
// systems equivalent to models::make_smart_light() / make_lep() — same
// structure, same game verdicts, same strategy-guided test outcomes.
#include <gtest/gtest.h>

#include <string>

#include "game/solver.h"
#include "game/strategy.h"
#include "lang/lang.h"
#include "models/lep.h"
#include "models/smart_light.h"
#include "support/system_structure.h"
#include "testing/executor.h"
#include "testing/simulated_imp.h"

namespace tigat::lang {
namespace {

using game::GameSolver;
using game::Strategy;
using tsystem::System;
using tsystem::TestPurpose;

#ifndef TIGAT_MODEL_DIR
#error "TIGAT_MODEL_DIR must point at examples/models"
#endif

std::string model_path(const std::string& file) {
  return std::string(TIGAT_MODEL_DIR) + "/" + file;
}

// Structural equivalence lives in tests/support/system_structure.h —
// the template test reuses it for stamped instances at every n.
using test_support::expect_same_structure;

struct Verdicts {
  bool winning = false;
  std::size_t keys = 0;
  std::size_t strategy_rows = 0;
};

Verdicts solve(const System& sys, const std::string& purpose) {
  GameSolver solver(sys, TestPurpose::parse(sys, purpose));
  const auto solution = solver.solve();
  return {solution->winning_from_initial(), solution->stats().keys,
          Strategy(solution).size()};
}

// ── Smart Light ───────────────────────────────────────────────────────

TEST(LangRoundtrip, SmartLightStructureMatchesCppBuilder) {
  const LoadedModel parsed = load_model(model_path("smart_light.tg"));
  const models::SmartLight built = models::make_smart_light();
  expect_same_structure(parsed.system, built.system);
  ASSERT_EQ(parsed.purposes.size(), 1u);  // control: A<> IUT.Bright
  EXPECT_EQ(parsed.purposes[0].kind, tsystem::PurposeKind::kReach);
}

TEST(LangRoundtrip, SmartLightVerdictsMatchCppBuilder) {
  const LoadedModel parsed = load_model(model_path("smart_light.tg"));
  const models::SmartLight built = models::make_smart_light();
  for (const char* purpose :
       {"control: A<> IUT.Bright", "control: A<> IUT.Off",
        "control: A<> IUT.Dim", "control: A<> IUT.L6"}) {
    SCOPED_TRACE(purpose);
    const Verdicts p = solve(parsed.system, purpose);
    const Verdicts b = solve(built.system, purpose);
    EXPECT_EQ(p.winning, b.winning);
    EXPECT_EQ(p.keys, b.keys);
    EXPECT_EQ(p.strategy_rows, b.strategy_rows);
  }
  // The shipped purpose is the winnable running example.
  GameSolver solver(parsed.system, parsed.purposes.at(0));
  EXPECT_TRUE(solver.solve()->winning_from_initial());
}

TEST(LangRoundtrip, SmartLightStrategyExecutionMatchesCppBuilder) {
  constexpr std::int64_t kScale = 16;
  const LoadedModel parsed = load_model(model_path("smart_light.tg"));
  const models::SmartLight built = models::make_smart_light();
  const models::SmartLight plant = models::make_smart_light_plant_only();

  GameSolver parsed_solver(parsed.system, parsed.purposes.at(0));
  const Strategy parsed_strategy(parsed_solver.solve());
  GameSolver built_solver(
      built.system, TestPurpose::parse(built.system, "control: A<> IUT.Bright"));
  const Strategy built_strategy(built_solver.solve());

  // Both strategies drive the same conforming black boxes to the same
  // verdict — eager, lazy and output-preference-flipped IMPs.
  const std::vector<testing::ImpPolicy> policies = {
      {0, {}},
      {2 * kScale, {}},
      {kScale, {"dim", "bright", "off"}},
  };
  for (std::size_t i = 0; i < policies.size(); ++i) {
    SCOPED_TRACE("policy " + std::to_string(i));
    testing::SimulatedImplementation imp_a(plant.system, kScale, policies[i]);
    testing::TestExecutor exec_a(parsed_strategy, imp_a, kScale);
    const testing::TestReport report_a = exec_a.run();

    testing::SimulatedImplementation imp_b(plant.system, kScale, policies[i]);
    testing::TestExecutor exec_b(built_strategy, imp_b, kScale);
    const testing::TestReport report_b = exec_b.run();

    EXPECT_EQ(report_a.verdict, report_b.verdict)
        << report_a.detail << " vs " << report_b.detail;
    EXPECT_EQ(report_a.verdict, testing::Verdict::kPass) << report_a.detail;
    EXPECT_EQ(report_a.trace_string(), report_b.trace_string());
  }
}

// ── Leader Election Protocol ──────────────────────────────────────────

TEST(LangRoundtrip, LepStructureMatchesCppBuilder) {
  const LoadedModel parsed = load_model(model_path("lep.tg"));
  const models::Lep built = models::make_lep({.nodes = 3});
  expect_same_structure(parsed.system, built.system);
  ASSERT_EQ(parsed.purposes.size(), 3u);  // TP1-TP3
}

TEST(LangRoundtrip, LepVerdictsMatchCppBuilderOnAllThreePurposes) {
  const LoadedModel parsed = load_model(model_path("lep.tg"));
  const models::Lep built = models::make_lep({.nodes = 3});
  const std::vector<std::string> purposes = {
      models::lep_tp1(), models::lep_tp2(), models::lep_tp3()};
  for (std::size_t i = 0; i < purposes.size(); ++i) {
    SCOPED_TRACE(purposes[i]);
    // File purpose on the parsed system vs the paper's TP text on the
    // C++ system (and cross-checked: the TP text on the parsed system).
    GameSolver from_file(parsed.system, parsed.purposes.at(i));
    const auto sol_file = from_file.solve();
    const Verdicts p = solve(parsed.system, purposes[i]);
    const Verdicts b = solve(built.system, purposes[i]);
    EXPECT_EQ(sol_file->winning_from_initial(), b.winning);
    EXPECT_EQ(p.winning, b.winning);
    EXPECT_TRUE(b.winning);  // all three are controllable in the paper
    EXPECT_EQ(p.keys, b.keys);
    EXPECT_EQ(sol_file->stats().keys, b.keys);
    EXPECT_EQ(p.strategy_rows, b.strategy_rows);
  }
}

// A mutated purpose that is *not* controllable must agree between the
// two systems as well — equivalence has to hold on losses, not just
// wins (the IUT cannot be forced to elect while a better address is
// pending).
TEST(LangRoundtrip, LepUncontrollablePurposeAgrees) {
  const LoadedModel parsed = load_model(model_path("lep.tg"));
  const models::Lep built = models::make_lep({.nodes = 3});
  const std::string purpose =
      "control: A<> (IUT.betterInfo == 1) and IUT.leader";
  const Verdicts p = solve(parsed.system, purpose);
  const Verdicts b = solve(built.system, purpose);
  EXPECT_EQ(p.winning, b.winning);
  EXPECT_EQ(p.keys, b.keys);
}

}  // namespace
}  // namespace tigat::lang
