// The .tgs v3 image contract: every byte of the file is either
// validated or checksummed, so no mutation — header field, section
// table geometry, payload bit rot, truncation — can produce a view
// that decides wrong; it throws SerializeError instead.  Plus the
// compat boundary: v1/v2 stream files land in VersionError with the
// "re-solve to migrate" diagnostic (never a checksum/bounds error),
// the auto-migrating decision::load upgrades them to a table deciding
// identically, and the mmap path does zero migrations and zero
// deserialization (counter-asserted).
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "decision/compiler.h"
#include "decision/format.h"
#include "decision/legacy.h"
#include "decision/serialize.h"
#include "game/solver.h"
#include "game/strategy.h"
#include "models/smart_light.h"
#include "obs/metrics.h"
#include "semantics/concrete.h"
#include "util/rng.h"

namespace tigat::decision {
namespace {

constexpr std::int64_t kScale = 16;
constexpr std::uint64_t kSeed = 0x763f0417ULL;

using semantics::ConcreteState;

std::shared_ptr<const game::GameSolution> solve(const tsystem::System& sys,
                                                const std::string& purpose) {
  game::GameSolver solver(sys, tsystem::TestPurpose::parse(sys, purpose));
  return solver.solve();
}

// Uniform fuzz over the discrete keys with clock grids a little past
// the maximal constants (same sampling idea as the equivalence suite,
// trimmed to what the round-trip checks need).
std::vector<ConcreteState> fuzz_states(const game::GameSolution& solution,
                                       util::Rng& rng, std::size_t count) {
  const auto& g = solution.graph();
  dbm::bound_t max_const = 1;
  for (const dbm::bound_t c : g.max_constants()) {
    max_const = std::max(max_const, c);
  }
  const std::int64_t hi = (static_cast<std::int64_t>(max_const) + 2) * kScale;
  std::vector<ConcreteState> out;
  out.reserve(count);
  for (std::size_t n = 0; n < count; ++n) {
    const auto k = static_cast<std::uint32_t>(
        rng.range(0, static_cast<std::int64_t>(g.key_count()) - 1));
    ConcreteState s;
    s.locs = g.key(k).locs;
    s.data = g.key(k).data;
    s.clocks.assign(g.system().clock_count(), 0);
    for (std::size_t c = 1; c < s.clocks.size(); ++c) {
      s.clocks[c] = rng.range(0, hi);
    }
    out.push_back(std::move(s));
  }
  return out;
}

void expect_identical(const DecisionTable& a, const DecisionTable& b,
                      const std::vector<ConcreteState>& states) {
  for (const ConcreteState& s : states) {
    ASSERT_EQ(a.decide(s, kScale), b.decide(s, kScale));
  }
}

// Patches the header checksum after a structural mutation, so the
// validator is forced past the checksum gate and must reject on the
// section geometry / record contents themselves.
void fix_checksum(std::vector<std::uint8_t>& image) {
  if (image.size() < sizeof(TgsHeader)) return;
  const std::uint64_t sum = fnv1a(image.data() + sizeof(TgsHeader),
                                  image.size() - sizeof(TgsHeader));
  std::memcpy(image.data() + offsetof(TgsHeader, checksum), &sum, 8);
}

void expect_rejected(std::vector<std::uint8_t> image, const char* what) {
  try {
    (void)DecisionTable(std::move(image));
    FAIL() << "mutation not rejected: " << what;
  } catch (const SerializeError&) {
    // Expected — SerializeError or its VersionError subclass; never an
    // uncaught crash, never a half-validated table.
  }
}

std::vector<std::uint8_t> smart_light_image(const std::string& purpose) {
  const auto light = models::make_smart_light();
  return to_bytes(compile(*solve(light.system, purpose)));
}

// ── header fuzz ─────────────────────────────────────────────────────

TEST(TgsFormat, HeaderFieldMutationsAreRejected) {
  const auto bytes = smart_light_image("control: A[] !IUT.Bright");
  TgsHeader header;
  std::memcpy(&header, bytes.data(), sizeof header);
  ASSERT_EQ(header.version, 3u);
  ASSERT_EQ(header.section_count, kSectionCount);

  const auto with = [&](auto&& mutate) {
    auto bad = bytes;
    TgsHeader h;
    std::memcpy(&h, bad.data(), sizeof h);
    mutate(h);
    std::memcpy(bad.data(), &h, sizeof h);
    fix_checksum(bad);
    return bad;
  };

  expect_rejected(with([](TgsHeader& h) { h.magic[0] = 'X'; }), "magic");
  expect_rejected(with([](TgsHeader& h) { h.version = 4; }), "future version");
  expect_rejected(with([](TgsHeader& h) { h.file_bytes += 8; }), "file_bytes");
  expect_rejected(with([](TgsHeader& h) { h.clock_dim = 0; }), "clock_dim 0");
  expect_rejected(with([](TgsHeader& h) { h.clock_dim = 1u << 20; }),
                  "clock_dim huge");
  expect_rejected(with([](TgsHeader& h) { h.purpose_kind = 2; }),
                  "purpose_kind");
  expect_rejected(with([](TgsHeader& h) { h.section_count = 13; }),
                  "section_count");
  expect_rejected(with([](TgsHeader& h) { h.key_count += 1; }), "key_count");
  // An unfixed checksum must be caught by the checksum itself.
  {
    auto bad = bytes;
    bad[bytes.size() / 2] ^= 0x10;
    expect_rejected(std::move(bad), "payload bit rot");
  }
}

// A v3 magic with a v1/v2 version number is the "needs migration"
// case and must say so, not claim corruption.
TEST(TgsFormat, OldVersionsLandInVersionError) {
  auto bytes = smart_light_image("control: A<> IUT.Bright");
  TgsHeader h;
  std::memcpy(&h, bytes.data(), sizeof h);
  h.version = 2;
  std::memcpy(bytes.data(), &h, sizeof h);
  fix_checksum(bytes);
  try {
    (void)DecisionTable(std::move(bytes));
    FAIL() << "v2 version accepted";
  } catch (const VersionError& e) {
    EXPECT_NE(std::string(e.what()).find("re-solve"), std::string::npos)
        << e.what();
  }
}

// ── section table fuzz ──────────────────────────────────────────────

// Every section's offset and length, mutated every which way (shifted,
// unaligned, overlapping, past EOF, non-multiple of the record size),
// with the checksum recomputed so only the geometry check can reject.
TEST(TgsFormat, SectionTableFuzz) {
  for (const char* purpose :
       {"control: A<> IUT.Bright", "control: A[] !IUT.Bright"}) {
    const auto bytes = smart_light_image(purpose);
    for (std::uint32_t sec = 0; sec < kSectionCount; ++sec) {
      const std::size_t rec_at =
          sizeof(TgsHeader) + sec * sizeof(SectionRec);
      SectionRec rec;
      std::memcpy(&rec, bytes.data() + rec_at, sizeof rec);
      ASSERT_EQ(rec.id, sec + 1);

      const auto with = [&](auto&& mutate, const char* what) {
        auto bad = bytes;
        SectionRec r = rec;
        mutate(r);
        std::memcpy(bad.data() + rec_at, &r, sizeof r);
        fix_checksum(bad);
        expect_rejected(std::move(bad),
                        (std::string(what) + " of section " +
                         std::to_string(sec + 1))
                            .c_str());
      };

      with([](SectionRec& r) { r.id += 1; }, "id");
      with([](SectionRec& r) { r.record_size += 1; }, "record_size");
      with([](SectionRec& r) { r.offset += 1; }, "unaligned offset");
      with([](SectionRec& r) { r.offset += 8; }, "shifted offset");
      with([](SectionRec& r) { r.offset = 0; }, "offset into header");
      with([&](SectionRec& r) { r.offset = bytes.size(); }, "offset at EOF");
      with([](SectionRec& r) { r.offset = ~0ull - 7; }, "offset overflow");
      with([](SectionRec& r) { r.bytes += 1; }, "ragged length");
      with([&](SectionRec& r) { r.bytes += 8 * r.record_size; },
           "overlong length");
      with([&](SectionRec& r) { r.bytes = ~0ull & ~7ull; },
           "length overflow");
      if (rec.bytes >= rec.record_size) {
        with([](SectionRec& r) { r.bytes -= r.record_size; },
             "short length");
      }
    }
  }
}

TEST(TgsFormat, TruncationAtEveryBoundaryIsRejected) {
  const auto bytes = smart_light_image("control: A[] !IUT.Bright");
  std::vector<std::size_t> cuts = {0, 1, 4, sizeof(TgsHeader) - 1,
                                   sizeof(TgsHeader), kSectionTableEnd - 1,
                                   kSectionTableEnd, bytes.size() - 1};
  for (std::uint32_t sec = 0; sec < kSectionCount; ++sec) {
    SectionRec rec;
    std::memcpy(&rec, bytes.data() + sizeof(TgsHeader) + sec * sizeof rec,
                sizeof rec);
    if (rec.offset > 0) cuts.push_back(rec.offset - 1);
    cuts.push_back(rec.offset + rec.bytes / 2);
  }
  for (const std::size_t cut : cuts) {
    if (cut >= bytes.size()) continue;
    auto bad = bytes;
    bad.resize(cut);
    expect_rejected(std::move(bad),
                    ("truncation at " + std::to_string(cut)).c_str());
  }
  // Trailing garbage is a size mismatch, not silently ignored bytes.
  auto bad = bytes;
  bad.push_back(0);
  expect_rejected(std::move(bad), "trailing garbage");
}

// Record-level rot under a fixed checksum: flip bits across the whole
// payload on a stride and demand each lands in either SerializeError
// or a table that still decides (mutations of e.g. a rank value can be
// semantically invisible — what is banned is a crash or an
// out-of-bounds walk).
TEST(TgsFormat, PayloadBitRotNeverCrashes) {
  const auto light = models::make_smart_light();
  const auto solution = solve(light.system, "control: A[] !IUT.Bright");
  const auto bytes = to_bytes(compile(*solution));
  util::Rng rng(kSeed);
  const auto states = fuzz_states(*solution, rng, 32);
  int rejected = 0, survived = 0;
  for (std::size_t at = kSectionTableEnd; at < bytes.size(); at += 7) {
    auto bad = bytes;
    bad[at] ^= 1u << (at % 8);
    fix_checksum(bad);
    try {
      const DecisionTable table{std::move(bad)};
      for (const ConcreteState& s : states) (void)table.decide(s, kScale);
      ++survived;
    } catch (const SerializeError&) {
      ++rejected;
    }
  }
  // The validator must be doing real work: most single-bit record
  // mutations break an invariant (sorted arcs, slice bounds, zone
  // canonicality, bucket agreement...).
  EXPECT_GT(rejected, survived);
}

// ── v2 migration ────────────────────────────────────────────────────

TEST(TgsFormat, V2MigrationRoundTripDecidesIdentically) {
  const auto light = models::make_smart_light();
  for (const char* purpose :
       {"control: A<> IUT.Bright", "control: A[] !IUT.Bright"}) {
    const auto solution = solve(light.system, purpose);
    const DecisionTable table = compile(*solution);

    // Fabricate the old stream format from the same data, as a v2-era
    // writer would have, then load through the public compat path.
    const std::vector<std::uint8_t> v2 = to_bytes_v2(table.export_data());
    ASSERT_TRUE(is_legacy_image(v2));
    obs::enable_metrics();  // the tgs.* counters are metrics-gated
    const std::uint64_t migrations_before =
        obs::metrics().counter("tgs.migrations").value();
    const DecisionTable migrated = from_bytes(v2);
    EXPECT_EQ(obs::metrics().counter("tgs.migrations").value(),
              migrations_before + 1);

    EXPECT_EQ(migrated.fingerprint(), table.fingerprint());
    EXPECT_EQ(migrated.purpose_kind(), table.purpose_kind());
    EXPECT_EQ(migrated.key_count(), table.key_count());
    util::Rng rng(kSeed);
    expect_identical(table, migrated, fuzz_states(*solution, rng, 1500));

    // Once migrated, the image is v3: a second round trip is
    // byte-stable.
    EXPECT_EQ(to_bytes(DecisionTable(to_bytes(migrated))),
              to_bytes(migrated));
  }
}

TEST(TgsFormat, V2FileLoadMigratesButMapRefuses) {
  const auto light = models::make_smart_light();
  const auto solution = solve(light.system, "control: A<> IUT.Bright");
  const DecisionTable table = compile(*solution);
  const std::vector<std::uint8_t> v2 = to_bytes_v2(table.export_data());

  const std::string path = ::testing::TempDir() + "/tgs_format_v2.tgs";
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite(v2.data(), 1, v2.size(), f), v2.size());
    std::fclose(f);
  }

  // The auto-migrating programmatic path upgrades transparently...
  const DecisionTable loaded = load(path);
  EXPECT_EQ(loaded.fingerprint(), table.fingerprint());

  // ...but the zero-copy serving path refuses with the migration
  // diagnostic — VersionError, exit-1 class, not "corrupt file".
  try {
    (void)DecisionTable::map(path);
    FAIL() << "map() accepted a v2 stream file";
  } catch (const VersionError& e) {
    EXPECT_NE(std::string(e.what()).find("re-solve"), std::string::npos)
        << e.what();
  }
  std::remove(path.c_str());
}

TEST(TgsFormat, TruncatedLegacyStubStillSaysMigrate) {
  // A bare v1/v2 header with no payload — the version verdict must
  // win over every other diagnostic.
  std::vector<std::uint8_t> stub(24, 0);
  std::memcpy(stub.data(), "TGSD", 4);
  const std::uint32_t version = 2;
  std::memcpy(stub.data() + 4, &version, 4);
  try {
    (void)DecisionTable(std::move(stub));
    FAIL() << "legacy stub accepted";
  } catch (const VersionError&) {
  }
}

// ── the zero-copy mmap path ─────────────────────────────────────────

TEST(TgsFormat, MapIsZeroCopyAndZeroMigration) {
  const auto light = models::make_smart_light();
  const auto solution = solve(light.system, "control: A[] !IUT.Bright");
  const DecisionTable table = compile(*solution);
  const std::string path = ::testing::TempDir() + "/tgs_format_map.tgs";
  save(table, path);

  obs::enable_metrics();  // the tgs.* counters are metrics-gated
  const std::uint64_t migrations_before =
      obs::metrics().counter("tgs.migrations").value();
  const std::uint64_t opens_before =
      obs::metrics().counter("tgs.view.opens").value();

  const DecisionTable mapped = DecisionTable::map(path);
  EXPECT_TRUE(mapped.is_mapped());
  EXPECT_FALSE(table.is_mapped());
  // Cold start is one mmap + validation: the view-open counter moves,
  // the migration counter must not — nothing was deserialized.
  EXPECT_EQ(obs::metrics().counter("tgs.migrations").value(),
            migrations_before);
  EXPECT_EQ(obs::metrics().counter("tgs.view.opens").value(),
            opens_before + 1);

  EXPECT_EQ(mapped.fingerprint(), table.fingerprint());
  EXPECT_EQ(mapped.system_name(), table.system_name());
  EXPECT_EQ(mapped.purpose_source(), table.purpose_source());
  util::Rng rng(kSeed);
  expect_identical(table, mapped, fuzz_states(*solution, rng, 2000));
  std::remove(path.c_str());
}

TEST(TgsFormat, MapMissingFileIsIoError) {
  EXPECT_THROW((void)DecisionTable::map(::testing::TempDir() +
                                        "/no_such_table.tgs"),
               SerializeError);
}

// Provenance strings survive the compiler, the image and the file.
TEST(TgsFormat, ProvenanceStringsAreCarried) {
  const auto light = models::make_smart_light();
  const auto solution = solve(light.system, "control: A<> IUT.Bright");
  const DecisionTable table = compile(*solution);
  EXPECT_EQ(table.system_name(), "smart_light");
  EXPECT_EQ(table.purpose_source(), "control: A<> IUT.Bright");
  const DecisionTable reloaded = from_bytes(to_bytes(table));
  EXPECT_EQ(reloaded.system_name(), "smart_light");
  EXPECT_EQ(reloaded.purpose_source(), "control: A<> IUT.Bright");
}

}  // namespace
}  // namespace tigat::decision
