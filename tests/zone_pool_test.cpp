// dbm::ZonePool / dbm::PooledFed — dictionary-compressed zone storage.
//
// Two layers of guarantees:
//   1. representation: a PooledFed mirrors Fed::add's filtering and
//      member ORDER exactly, so compress → materialize round-trips to
//      a bit-identical federation (operator== per zone, same order);
//   2. end to end: GameSolver with compact_zones on and off produces
//      identical solutions — keys, reach sets, winning federations,
//      deltas, ranks and rendered strategies.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "dbm/zone_pool.h"
#include "game/solver.h"
#include "game/strategy.h"
#include "models/lep.h"
#include "models/smart_light.h"
#include "util/rng.h"

namespace tigat::dbm {
namespace {

// Random non-empty zone over `dim` clocks: constrain a universal zone
// with a handful of random (i, j, bound) facets; retry on emptiness.
Dbm random_zone(util::Rng& rng, std::uint32_t dim) {
  for (;;) {
    Dbm z = Dbm::universal(dim);
    bool alive = true;
    const int facets = static_cast<int>(rng.range(1, 2 * dim));
    for (int f = 0; f < facets && alive; ++f) {
      const auto i = static_cast<std::uint32_t>(rng.range(0, dim - 1));
      const auto j = static_cast<std::uint32_t>(rng.range(0, dim - 1));
      if (i == j) continue;
      const auto c = static_cast<bound_t>(rng.range(i == 0 ? -8 : 0, 10));
      const raw_t b = rng.chance(1, 2) ? make_weak(c) : make_strict(c);
      alive = z.constrain(i, j, b);
    }
    if (alive) return z;
  }
}

TEST(ZonePool, RowInterningDeduplicates) {
  ZonePool pool(3);
  const raw_t row_a[3] = {kLeZero, make_weak(-1), make_weak(-2)};
  const raw_t row_b[3] = {make_weak(5), kLeZero, kInfinity};
  const auto a1 = pool.intern_row(row_a);
  const auto b1 = pool.intern_row(row_b);
  const auto a2 = pool.intern_row(row_a);
  EXPECT_EQ(a1, a2);
  EXPECT_NE(a1, b1);
  EXPECT_EQ(pool.row_count(), 2u);
  EXPECT_EQ(0, std::memcmp(pool.row(a1), row_a, sizeof row_a));
  EXPECT_EQ(0, std::memcmp(pool.row(b1), row_b, sizeof row_b));
}

// The core mirror property: feed the SAME random zone stream to a Fed
// (via add) and a PooledFed (via add); at every step the materialized
// PooledFed must equal the Fed bit for bit, including member order.
TEST(ZonePool, AddMirrorsFedExactly) {
  for (const std::uint32_t dim : {2u, 3u, 4u}) {
    SCOPED_TRACE("dim=" + std::to_string(dim));
    util::Rng rng(42 + dim);
    ZonePool pool(dim);
    for (int trial = 0; trial < 30; ++trial) {
      Fed fed(dim);
      PooledFed pooled(dim);
      Fed materialized(dim);
      for (int step = 0; step < 25; ++step) {
        const Dbm z = random_zone(rng, dim);
        fed.add(z);
        pooled.add(z, pool);
        ASSERT_EQ(pooled.size(), fed.size());
        pooled.materialize(materialized, pool);
        ASSERT_EQ(materialized.size(), fed.size());
        for (std::size_t m = 0; m < fed.size(); ++m) {
          ASSERT_TRUE(materialized.zones()[m] == fed.zones()[m])
              << "trial " << trial << " step " << step << " member " << m;
        }
      }
    }
  }
}

TEST(ZonePool, CoversMatchesSingleMemberSubsumption) {
  util::Rng rng(7);
  const std::uint32_t dim = 3;
  ZonePool pool(dim);
  Fed fed(dim);
  PooledFed pooled(dim);
  for (int i = 0; i < 40; ++i) {
    const Dbm z = random_zone(rng, dim);
    fed.add(z);
    pooled.add(z, pool);
  }
  for (int i = 0; i < 200; ++i) {
    const Dbm probe = random_zone(rng, dim);
    bool plain = false;
    for (const Dbm& member : fed.zones()) {
      if (probe.is_subset_of(member)) {
        plain = true;
        break;
      }
    }
    EXPECT_EQ(pooled.covers(probe, pool), plain) << "probe " << i;
  }
}

TEST(ZonePool, ContainsPointMatchesMaterialized) {
  util::Rng rng(11);
  const std::uint32_t dim = 3;
  ZonePool pool(dim);
  PooledFed pooled(dim);
  Fed fed(dim);
  for (int i = 0; i < 20; ++i) {
    const Dbm z = random_zone(rng, dim);
    fed.add(z);
    pooled.add(z, pool);
  }
  for (int i = 0; i < 300; ++i) {
    std::vector<std::int64_t> point(dim, 0);
    for (std::uint32_t c = 1; c < dim; ++c) point[c] = rng.range(0, 12);
    EXPECT_EQ(pooled.contains_point(point, pool), fed.contains_point(point))
        << "point trial " << i;
  }
}

TEST(ZonePool, AssignRoundTripsArbitraryFeds) {
  util::Rng rng(13);
  const std::uint32_t dim = 4;
  ZonePool pool(dim);
  for (int trial = 0; trial < 20; ++trial) {
    Fed fed(dim);
    for (int i = 0; i < 10; ++i) fed.add(random_zone(rng, dim));
    PooledFed pooled(dim);
    pooled.assign(fed, pool);
    Fed back(dim);
    pooled.materialize(back, pool);
    ASSERT_EQ(back.size(), fed.size());
    for (std::size_t m = 0; m < fed.size(); ++m) {
      EXPECT_TRUE(back.zones()[m] == fed.zones()[m]) << "member " << m;
    }
  }
}

// End to end: compact_zones on/off solve to identical solutions.
void expect_identical_solutions(const tsystem::System& sys,
                                const std::string& prop) {
  using game::GameSolution;
  using game::GameSolver;
  using game::SolverOptions;
  using game::Strategy;

  SolverOptions plain_opt;
  plain_opt.threads = 1;
  GameSolver plain_solver(sys, tsystem::TestPurpose::parse(sys, prop),
                          plain_opt);
  const auto plain = plain_solver.solve();

  SolverOptions compact_opt;
  compact_opt.threads = 1;
  compact_opt.compact_zones = true;
  GameSolver compact_solver(sys, tsystem::TestPurpose::parse(sys, prop),
                            compact_opt);
  const auto compact = compact_solver.solve();

  EXPECT_EQ(plain->winning_from_initial(), compact->winning_from_initial());
  EXPECT_EQ(plain->stats().rounds, compact->stats().rounds);
  EXPECT_EQ(plain->stats().reach_zones, compact->stats().reach_zones);
  EXPECT_EQ(plain->stats().winning_zones, compact->stats().winning_zones);
  ASSERT_EQ(plain->graph().key_count(), compact->graph().key_count());
  EXPECT_GT(compact->stats().zone_pool_rows, 0u);
  EXPECT_EQ(plain->stats().zone_pool_rows, 0u);

  Fed scratch(sys.clock_count());
  for (std::uint32_t k = 0; k < plain->graph().key_count(); ++k) {
    ASSERT_EQ(plain->graph().key(k).locs, compact->graph().key(k).locs)
        << "key " << k;
    // Reach sets must be bit-identical (zone by zone, same order), not
    // just equal as point sets.
    const Fed& pr = plain->graph().reach(k);
    const Fed& cr = compact->graph().reach(k, scratch);
    ASSERT_EQ(pr.size(), cr.size()) << "key " << k;
    for (std::size_t z = 0; z < pr.size(); ++z) {
      ASSERT_TRUE(pr.zones()[z] == cr.zones()[z]) << "key " << k << " zone "
                                                  << z;
    }
    // Winning federations and deltas via the materializing accessors.
    const Fed& pw = plain->winning(k);
    const Fed& cw = compact->winning(k);
    ASSERT_EQ(pw.size(), cw.size()) << "key " << k;
    for (std::size_t z = 0; z < pw.size(); ++z) {
      ASSERT_TRUE(pw.zones()[z] == cw.zones()[z]) << "key " << k;
    }
    const auto& pd = plain->deltas(k);
    const auto& cd = compact->deltas(k);
    ASSERT_EQ(pd.size(), cd.size()) << "key " << k;
    for (std::size_t d = 0; d < pd.size(); ++d) {
      EXPECT_EQ(pd[d].round, cd[d].round) << "key " << k;
      ASSERT_EQ(pd[d].gained.size(), cd[d].gained.size()) << "key " << k;
      for (std::size_t z = 0; z < pd[d].gained.size(); ++z) {
        ASSERT_TRUE(pd[d].gained.zones()[z] == cd[d].gained.zones()[z])
            << "key " << k << " delta " << d;
      }
      EXPECT_TRUE(plain->winning_up_to(k, pd[d].round)
                      .same_set_as(compact->winning_up_to(k, cd[d].round)))
          << "key " << k;
    }
  }
  // The rendered strategy exercises action_region / winning_up_to on
  // the compact path end to end.
  EXPECT_EQ(Strategy(plain).to_string(), Strategy(compact).to_string());
}

TEST(ZonePoolSolver, SmartLightCompactOnOffIdentical) {
  models::SmartLight spec = models::make_smart_light();
  expect_identical_solutions(spec.system, "control: A<> IUT.Bright");
  expect_identical_solutions(spec.system, "control: A<> IUT.Dim");
}

TEST(ZonePoolSolver, LepN3CompactOnOffIdentical) {
  models::Lep lep = models::make_lep({.nodes = 3});
  expect_identical_solutions(lep.system, models::lep_tp1());
  expect_identical_solutions(lep.system, models::lep_tp3());
}

TEST(ZonePoolSolver, CompactReportsCompressedFootprint) {
  // The Table 1 memory column must reflect the compressed store: the
  // same game solved compact must peak well below plain.
  models::Lep lep = models::make_lep({.nodes = 4});
  // Scoped so the first solution's zones are gone before the second
  // solve samples its peak (solve() restarts the high-water mark from
  // the bytes still live).
  std::size_t plain_peak = 0;
  {
    game::SolverOptions opt;
    opt.threads = 1;
    game::GameSolver solver(
        lep.system, tsystem::TestPurpose::parse(lep.system, models::lep_tp1()),
        opt);
    plain_peak = solver.solve()->stats().peak_zone_bytes;
  }
  std::size_t compact_peak = 0;
  {
    game::SolverOptions opt;
    opt.threads = 1;
    opt.compact_zones = true;
    game::GameSolver solver(
        lep.system, tsystem::TestPurpose::parse(lep.system, models::lep_tp1()),
        opt);
    compact_peak = solver.solve()->stats().peak_zone_bytes;
  }
  EXPECT_LT(compact_peak, plain_peak / 2);
}

}  // namespace
}  // namespace tigat::dbm
