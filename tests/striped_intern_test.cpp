// util::StripedInternMap — the striped concurrent interner behind the
// parallel zone-graph exploration (semantics/symbolic.cpp).
//
// The property that matters: whatever the thread count and however the
// insertion races resolve, seal_wave() must number keys in the exact
// order a serial FIFO would have first encountered them.  The tests
// hammer the map from many threads with deliberately colliding keys
// and compare the numbering against a serial reference interner,
// including across multiple waves, duplicate-heavy streams and
// single-stripe (maximum contention, forced rehash) configurations.
// The CI ThreadSanitizer job and the nightly big-n workflow run this
// file at 16 threads.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "util/rng.h"
#include "util/striped_intern.h"
#include "util/thread_pool.h"

namespace tigat::util {
namespace {

// A key whose hash collides on purpose (only kHashBuckets distinct
// hashes) so chains grow long and distinct keys fight over buckets.
struct CollidingKey {
  std::uint64_t v = 0;
  bool operator==(const CollidingKey&) const = default;
  [[nodiscard]] std::size_t hash() const noexcept { return v % 97; }
};

using Map = StripedInternMap<CollidingKey, int>;

// The serial-FIFO numbering the striped map must reproduce: scan the
// stream in order, number each key at first encounter.
std::unordered_map<std::uint64_t, std::uint32_t> serial_numbering(
    const std::vector<std::vector<std::uint64_t>>& waves) {
  std::unordered_map<std::uint64_t, std::uint32_t> ids;
  for (const auto& wave : waves) {
    for (const std::uint64_t v : wave) {
      ids.emplace(v, static_cast<std::uint32_t>(ids.size()));
    }
  }
  return ids;
}

std::vector<std::vector<std::uint64_t>> random_waves(std::uint64_t seed,
                                                     std::size_t n_waves,
                                                     std::size_t wave_len,
                                                     std::uint64_t key_span) {
  Rng rng(seed);
  std::vector<std::vector<std::uint64_t>> waves(n_waves);
  for (auto& wave : waves) {
    wave.reserve(wave_len);
    for (std::size_t i = 0; i < wave_len; ++i) {
      // Heavy duplication: key_span ≪ total stream length.
      wave.push_back(static_cast<std::uint64_t>(rng.range(
          0, static_cast<std::int64_t>(key_span) - 1)));
    }
  }
  return waves;
}

// Drives the map through the waves with `threads` workers and checks
// the numbering (and the exactly-once insertion contract) against the
// serial reference.
void run_and_check(Map& map, const std::vector<std::vector<std::uint64_t>>& waves,
                   unsigned threads) {
  ThreadPool pool(threads);
  const auto expected = serial_numbering(waves);
  std::atomic<std::size_t> insertions{0};
  for (const auto& wave : waves) {
    pool.parallel_for(wave.size(), 1, [&](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) {
        CollidingKey key{wave[i]};
        const std::size_t h = key.hash();
        auto [entry, inserted] = map.intern(std::move(key), h, i);
        ASSERT_NE(entry, nullptr);
        if (inserted) {
          entry->aux = static_cast<int>(entry->key.v);  // one-time payload
          insertions.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
    map.seal_wave();
  }
  ASSERT_EQ(map.size(), expected.size());
  ASSERT_EQ(insertions.load(), expected.size());
  for (const auto& [v, id] : expected) {
    const CollidingKey key{v};
    const auto* e = map.find(key, key.hash());
    ASSERT_NE(e, nullptr) << "key " << v;
    EXPECT_EQ(e->id, id) << "key " << v;
    EXPECT_EQ(e->aux, static_cast<int>(v)) << "aux payload of key " << v;
    EXPECT_EQ(map.entry(id), e) << "id → entry lookup of key " << v;
  }
}

TEST(StripedIntern, SerialMatchesReference) {
  Map map;
  run_and_check(map, random_waves(/*seed=*/1, 6, 4000, 900), 1);
}

TEST(StripedIntern, NumberingIdenticalAcrossThreadCounts) {
  const auto waves = random_waves(/*seed=*/2, 5, 6000, 1500);
  for (const unsigned threads : {1u, 2u, 4u, 8u, 16u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    Map map;
    run_and_check(map, waves, threads);
  }
}

TEST(StripedIntern, SingleStripeMaxContentionAndRehash) {
  // One stripe: every insert fights for the same mutex, chains exceed
  // the 2× load factor and force the between-wave rehash path.
  const auto waves = random_waves(/*seed=*/3, 4, 8000, 5000);
  for (const unsigned threads : {4u, 16u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    Map map(/*stripes=*/1);
    run_and_check(map, waves, threads);
  }
}

TEST(StripedIntern, RacingDuplicatesKeepMinimumRank) {
  // Every worker interns the SAME key at a different rank; the sealed
  // order must follow the minimum, i.e. the serial first encounter.
  Map map;
  ThreadPool pool(8);
  // Two fresh keys per wave, each hammered from every index; key A
  // always first.
  for (std::uint64_t wave = 0; wave < 50; ++wave) {
    const std::uint64_t a = 2 * wave, b = 2 * wave + 1;
    pool.parallel_for(64, 1, [&](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) {
        // Interleave: even indices touch B first at a HIGH rank, then
        // A at a low rank — min-rank must still order A before B.
        CollidingKey kb{b};
        map.intern(std::move(kb), CollidingKey{b}.hash(), 2 * i + 1);
        CollidingKey ka{a};
        map.intern(std::move(ka), CollidingKey{a}.hash(), 2 * i);
      }
    });
    map.seal_wave();
    const auto* ea = map.find(CollidingKey{a}, CollidingKey{a}.hash());
    const auto* eb = map.find(CollidingKey{b}, CollidingKey{b}.hash());
    ASSERT_NE(ea, nullptr);
    ASSERT_NE(eb, nullptr);
    EXPECT_EQ(ea->id, 2 * wave);
    EXPECT_EQ(eb->id, 2 * wave + 1);
  }
}

TEST(StripedIntern, FindMissesAndUnsealedEntries) {
  Map map;
  EXPECT_EQ(map.find(CollidingKey{7}, CollidingKey{7}.hash()), nullptr);
  CollidingKey k{7};
  auto [entry, inserted] = map.intern(std::move(k), CollidingKey{7}.hash(), 0);
  ASSERT_TRUE(inserted);
  EXPECT_EQ(entry->id, Map::kUnassigned);  // not yet sealed
  map.seal_wave();
  EXPECT_EQ(entry->id, 0u);
  EXPECT_EQ(map.size(), 1u);
}

}  // namespace
}  // namespace tigat::util
