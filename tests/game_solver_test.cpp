// Tests for the timed reachability-game solver on hand-analysable
// games, plus the Smart Light control objectives of the paper.
#include <gtest/gtest.h>

#include "game/solver.h"
#include "game/strategy.h"
#include "models/smart_light.h"

namespace tigat::game {
namespace {

using tsystem::Controllability;
using tsystem::LocId;
using tsystem::Process;
using tsystem::System;
using tsystem::TestPurpose;

std::shared_ptr<const GameSolution> solve(const System& sys,
                                          const std::string& prop) {
  GameSolver solver(sys, TestPurpose::parse(sys, prop));
  return solver.solve();
}

TEST(GameSolver, GoalAtInitialIsRankZero) {
  System sys("g0");
  sys.add_clock("x");
  Process& p = sys.add_process("P", Controllability::kUncontrollable);
  p.add_location("A");
  sys.finalize();
  const auto sol = solve(sys, "control: A<> P.A");
  EXPECT_TRUE(sol->winning_from_initial());
  EXPECT_TRUE(sol->goal_key(0));
  const std::vector<std::int64_t> zero = {0, 0};
  EXPECT_EQ(sol->rank(0, zero, 1), 0u);
}

TEST(GameSolver, SimpleTimedReachability) {
  // A --a?[x ≥ 2]--> G.  The controller waits, then acts: every state
  // of A is winning (no upper bound on the guard).
  System sys("g1");
  const auto x = sys.add_clock("x");
  const auto a = sys.add_channel("a", Controllability::kControllable);
  Process& plant = sys.add_process("P", Controllability::kUncontrollable);
  const LocId la = plant.add_location("A");
  const LocId lg = plant.add_location("G");
  plant.add_edge(la, lg).receive(a).guard(x >= 2);
  Process& env = sys.add_process("E", Controllability::kControllable);
  const LocId e0 = env.add_location("E0");
  env.add_edge(e0, e0).send(a);
  sys.finalize();

  const auto sol = solve(sys, "control: A<> P.G");
  EXPECT_TRUE(sol->winning_from_initial());
  // Winning everywhere in A.
  semantics::DiscreteKey key{{la, e0}, sys.data().initial_state()};
  const auto k = sol->graph().find_key(key);
  ASSERT_TRUE(k.has_value());
  const std::vector<std::int64_t> pt0 = {0, 0};
  const std::vector<std::int64_t> pt9 = {0, 9};
  EXPECT_TRUE(sol->rank(*k, pt0, 1).has_value());
  EXPECT_TRUE(sol->rank(*k, pt9, 1).has_value());
  EXPECT_GE(*sol->rank(*k, pt0, 1), 1u);
}

TEST(GameSolver, UpperBoundedGuardLimitsWinning) {
  // A --a?[2 ≤ x ≤ 4]--> G: winning iff x ≤ 4.
  System sys("g2");
  const auto x = sys.add_clock("x");
  const auto a = sys.add_channel("a", Controllability::kControllable);
  Process& plant = sys.add_process("P", Controllability::kUncontrollable);
  const LocId la = plant.add_location("A");
  const LocId lg = plant.add_location("G");
  plant.add_edge(la, lg).receive(a).guard({x >= 2, x <= 4});
  Process& env = sys.add_process("E", Controllability::kControllable);
  const LocId e0 = env.add_location("E0");
  env.add_edge(e0, e0).send(a);
  sys.finalize();

  const auto sol = solve(sys, "control: A<> P.G");
  EXPECT_TRUE(sol->winning_from_initial());
  semantics::DiscreteKey key{{la, e0}, sys.data().initial_state()};
  const auto k = sol->graph().find_key(key);
  ASSERT_TRUE(k.has_value());
  const auto at = [&](std::int64_t ticks) {  // scale 2
    const std::vector<std::int64_t> p = {0, ticks};
    return sol->rank(*k, p, 2).has_value();
  };
  EXPECT_TRUE(at(0));
  EXPECT_TRUE(at(8));    // x = 4.0
  EXPECT_FALSE(at(9));   // x = 4.5
  EXPECT_FALSE(at(20));  // x = 10
}

// The race: opponent u! escapes to a sink from x ≥ 3; controller needs
// x ≥ 2.  With ties going to the opponent, winning is exactly x < 3.
TEST(GameSolver, OpponentRaceWithClosedAvoidance) {
  System sys("g3");
  const auto x = sys.add_clock("x");
  const auto a = sys.add_channel("a", Controllability::kControllable);
  const auto u = sys.add_channel("u", Controllability::kUncontrollable);
  Process& plant = sys.add_process("P", Controllability::kUncontrollable);
  const LocId la = plant.add_location("A");
  const LocId lg = plant.add_location("G");
  const LocId ls = plant.add_location("S");
  plant.add_edge(la, lg).receive(a).guard(x >= 2);
  plant.add_edge(la, ls).send(u).guard(x >= 3);
  Process& env = sys.add_process("E", Controllability::kControllable);
  const LocId e0 = env.add_location("E0");
  env.add_edge(e0, e0).send(a);
  env.add_edge(e0, e0).receive(u);
  sys.finalize();

  const auto sol = solve(sys, "control: A<> P.G");
  EXPECT_TRUE(sol->winning_from_initial());
  semantics::DiscreteKey key{{la, e0}, sys.data().initial_state()};
  const auto k = sol->graph().find_key(key);
  ASSERT_TRUE(k.has_value());
  const auto at = [&](std::int64_t ticks) {
    const std::vector<std::int64_t> p = {0, ticks};
    return sol->rank(*k, p, 2).has_value();
  };
  EXPECT_TRUE(at(0));
  EXPECT_TRUE(at(4));   // x = 2: act immediately, opponent not yet able
  EXPECT_TRUE(at(5));   // x = 2.5
  EXPECT_FALSE(at(6));  // x = 3: simultaneous — opponent wins ties
  EXPECT_FALSE(at(7));
}

// If the opponent can escape from the very start, nothing is winning.
TEST(GameSolver, ImmediateEscapeUnwinnable) {
  System sys("g4");
  const auto x = sys.add_clock("x");
  const auto a = sys.add_channel("a", Controllability::kControllable);
  const auto u = sys.add_channel("u", Controllability::kUncontrollable);
  Process& plant = sys.add_process("P", Controllability::kUncontrollable);
  const LocId la = plant.add_location("A");
  const LocId lg = plant.add_location("G");
  const LocId ls = plant.add_location("S");
  plant.add_edge(la, lg).receive(a).guard(x >= 2);
  plant.add_edge(la, ls).send(u);  // guard true: escape any time
  Process& env = sys.add_process("E", Controllability::kControllable);
  const LocId e0 = env.add_location("E0");
  env.add_edge(e0, e0).send(a);
  env.add_edge(e0, e0).receive(u);
  sys.finalize();

  const auto sol = solve(sys, "control: A<> P.G");
  EXPECT_FALSE(sol->winning_from_initial());
}

// Forced progress: the only route to the goal is an uncontrollable
// output bounded by an invariant (the Smart Light L6 situation).
TEST(GameSolver, ForcedUncontrollableOutputWins) {
  System sys("g5");
  const auto x = sys.add_clock("x");
  const auto o = sys.add_channel("o", Controllability::kUncontrollable);
  Process& plant = sys.add_process("P", Controllability::kUncontrollable);
  const LocId la = plant.add_location("A");
  const LocId lg = plant.add_location("G");
  plant.set_invariant(la, x <= 2);
  plant.add_edge(la, lg).send(o);
  Process& env = sys.add_process("E", Controllability::kControllable);
  const LocId e0 = env.add_location("E0");
  env.add_edge(e0, e0).receive(o);
  sys.finalize();

  const auto sol = solve(sys, "control: A<> P.G");
  EXPECT_TRUE(sol->winning_from_initial());
  semantics::DiscreteKey key{{la, e0}, sys.data().initial_state()};
  const auto k = sol->graph().find_key(key);
  ASSERT_TRUE(k.has_value());
  // The whole invariant zone is winning (wait for the forced output).
  const std::vector<std::int64_t> p0 = {0, 0};
  const std::vector<std::int64_t> p2 = {0, 4};
  EXPECT_TRUE(sol->rank(*k, p0, 2).has_value());
  EXPECT_TRUE(sol->rank(*k, p2, 2).has_value());
}

// Same but the opponent has an alternative escape output: not winning.
TEST(GameSolver, ForcedOutputWithEscapeIsNotWinning) {
  System sys("g6");
  const auto x = sys.add_clock("x");
  const auto o = sys.add_channel("o", Controllability::kUncontrollable);
  const auto u = sys.add_channel("u", Controllability::kUncontrollable);
  Process& plant = sys.add_process("P", Controllability::kUncontrollable);
  const LocId la = plant.add_location("A");
  const LocId lg = plant.add_location("G");
  const LocId ls = plant.add_location("S");
  plant.set_invariant(la, x <= 2);
  plant.add_edge(la, lg).send(o);
  plant.add_edge(la, ls).send(u);
  Process& env = sys.add_process("E", Controllability::kControllable);
  const LocId e0 = env.add_location("E0");
  env.add_edge(e0, e0).receive(o);
  env.add_edge(e0, e0).receive(u);
  sys.finalize();

  const auto sol = solve(sys, "control: A<> P.G");
  EXPECT_FALSE(sol->winning_from_initial());
}

// Strict invariant bounds never force (the deadline is not attained).
TEST(GameSolver, StrictInvariantDoesNotForce) {
  System sys("g7");
  const auto x = sys.add_clock("x");
  const auto o = sys.add_channel("o", Controllability::kUncontrollable);
  Process& plant = sys.add_process("P", Controllability::kUncontrollable);
  const LocId la = plant.add_location("A");
  const LocId lg = plant.add_location("G");
  plant.set_invariant(la, x < 2);
  plant.add_edge(la, lg).send(o);
  Process& env = sys.add_process("E", Controllability::kControllable);
  const LocId e0 = env.add_location("E0");
  env.add_edge(e0, e0).receive(o);
  sys.finalize();

  const auto sol = solve(sys, "control: A<> P.G");
  EXPECT_FALSE(sol->winning_from_initial());
}

// Urgent location: the SUT must move immediately; all moves winning.
TEST(GameSolver, UrgentLocationForcesImmediately) {
  System sys("g8");
  sys.add_clock("x");
  const auto o = sys.add_channel("o", Controllability::kUncontrollable);
  Process& plant = sys.add_process("P", Controllability::kUncontrollable);
  const LocId la = plant.add_location("A", tsystem::LocationKind::kUrgent);
  const LocId lg = plant.add_location("G");
  plant.add_edge(la, lg).send(o);
  Process& env = sys.add_process("E", Controllability::kControllable);
  const LocId e0 = env.add_location("E0");
  env.add_edge(e0, e0).receive(o);
  sys.finalize();

  const auto sol = solve(sys, "control: A<> P.G");
  EXPECT_TRUE(sol->winning_from_initial());
}

// ── Smart Light objectives ───────────────────────────────────────────

TEST(GameSolver, SmartLightBrightIsControllable) {
  models::SmartLight m = models::make_smart_light();
  const auto sol = solve(m.system, "control: A<> IUT.Bright");
  EXPECT_TRUE(sol->winning_from_initial());
  const auto& st = sol->stats();
  EXPECT_GT(st.rounds, 1u);
  EXPECT_GT(st.winning_zones, 3u);
}

TEST(GameSolver, SmartLightOffIsTriviallyWinning) {
  models::SmartLight m = models::make_smart_light();
  const auto sol = solve(m.system, "control: A<> IUT.Off");
  EXPECT_TRUE(sol->winning_from_initial());  // initial state is Off
  const std::vector<std::int64_t> zero(m.system.clock_count(), 0);
  EXPECT_EQ(sol->rank(sol->graph().initial_key(), zero, 1), 0u);
}

TEST(GameSolver, SmartLightDimIsControllable) {
  models::SmartLight m = models::make_smart_light();
  const auto sol = solve(m.system, "control: A<> IUT.Dim");
  EXPECT_TRUE(sol->winning_from_initial());
}

// L4 outputs dim!/off! at the light's whim: "force Bright while never
// passing through Dim or Off" fails from Bright (touching risks both),
// so a strengthened purpose that forbids revisiting Off is unwinnable
// only where Off is forced — sanity-check that winning is *not*
// universal: the purpose "reach Bright with x already past Tidle" is
// not reachable directly from init in one step.
TEST(GameSolver, SmartLightStrategyObjectSane) {
  models::SmartLight m = models::make_smart_light();
  const auto sol = solve(m.system, "control: A<> IUT.Bright");
  Strategy strat(sol);
  EXPECT_GT(strat.size(), 5u);
  const std::string s = strat.to_string();
  EXPECT_NE(s.find("IUT.Bright"), std::string::npos);
  EXPECT_NE(s.find("take"), std::string::npos);
  EXPECT_NE(s.find("goal reached"), std::string::npos);
}

TEST(GameSolver, StrategyDecidesAtInitialState) {
  models::SmartLight m = models::make_smart_light();
  const auto sol = solve(m.system, "control: A<> IUT.Bright");
  Strategy strat(sol);
  semantics::ConcreteSemantics sem(m.system, 4);
  semantics::ConcreteState s = sem.initial();
  const Move mv = strat.decide(s, sem.scale());
  ASSERT_TRUE(mv.rank.has_value());
  EXPECT_GT(*mv.rank, 0u);
  // At t=0 the user cannot touch yet (z < Treact): must delay, and the
  // next decision point is finite (when touch becomes useful).
  EXPECT_EQ(mv.kind, MoveKind::kDelay);
  EXPECT_LT(mv.next_decision_ticks, Move::kNoDecision);
  EXPECT_GT(mv.next_decision_ticks, 0);
}

// ── Safety games (`control: A[] φ`) ──────────────────────────────────

TEST(GameSolver, SafetyTriviallyWinningWithoutThreats) {
  System sys("s0");
  sys.add_clock("x");
  Process& p = sys.add_process("P", Controllability::kUncontrollable);
  p.add_location("A");
  sys.finalize();
  const auto sol = solve(sys, "control: A[] P.A");
  EXPECT_TRUE(sol->winning_from_initial());
  EXPECT_TRUE(sol->goal_key(0));  // φ holds at the (only) key
  const std::vector<std::int64_t> zero = {0, 0};
  EXPECT_EQ(sol->rank(0, zero, 1), 0u);
}

// The SUT can always fire u! into the bad location and the tester has
// no escape: nothing maintains φ.  Note φ HOLDS at the initial state —
// safety losing is about the future, not the present.
TEST(GameSolver, SafetyUnwinnableWithoutEscape) {
  System sys("s1");
  sys.add_clock("x");
  const auto u = sys.add_channel("u", Controllability::kUncontrollable);
  Process& plant = sys.add_process("P", Controllability::kUncontrollable);
  const LocId la = plant.add_location("A");
  const LocId ls = plant.add_location("S");
  plant.add_edge(la, ls).send(u);
  Process& env = sys.add_process("E", Controllability::kControllable);
  const LocId e0 = env.add_location("E0");
  env.add_edge(e0, e0).receive(u);
  sys.finalize();

  const auto sol = solve(sys, "control: A[] !P.S");
  EXPECT_TRUE(sol->goal_key(sol->graph().initial_key()));
  EXPECT_FALSE(sol->winning_from_initial());
}

// An always-enabled controllable escape to a harmless location keeps
// the whole of A safe — even where the threat u! is already enabled,
// because the safe-timed-predecessor's closed avoidance hands
// boundary ties to the attractor's OPPONENT, here the tester.
TEST(GameSolver, SafetyEscapeKeepsEverythingSafe) {
  System sys("s2");
  const auto x = sys.add_clock("x");
  const auto a = sys.add_channel("a", Controllability::kControllable);
  const auto u = sys.add_channel("u", Controllability::kUncontrollable);
  Process& plant = sys.add_process("P", Controllability::kUncontrollable);
  const LocId la = plant.add_location("A");
  const LocId lb = plant.add_location("B");
  const LocId ls = plant.add_location("S");
  plant.add_edge(la, lb).receive(a);
  plant.add_edge(la, ls).send(u).guard(x >= 3);
  Process& env = sys.add_process("E", Controllability::kControllable);
  const LocId e0 = env.add_location("E0");
  env.add_edge(e0, e0).send(a);
  env.add_edge(e0, e0).receive(u);
  sys.finalize();

  const auto sol = solve(sys, "control: A[] !P.S");
  EXPECT_TRUE(sol->winning_from_initial());
  semantics::DiscreteKey key{{la, e0}, sys.data().initial_state()};
  const auto k = sol->graph().find_key(key);
  ASSERT_TRUE(k.has_value());
  const std::vector<std::int64_t> p10 = {0, 10};
  EXPECT_EQ(sol->rank(*k, p10, 1), 0u);  // u! enabled, escape still wins
}

// Escape a? only while x ≤ 2, capture u! from x ≥ 3: in the gap
// 2 < x < 3 the tester has nothing and the SUT only has to wait, so
// Safe(A) is exactly x ≤ 2.
TEST(GameSolver, SafetyTimedEscapeWindow) {
  System sys("s3");
  const auto x = sys.add_clock("x");
  const auto a = sys.add_channel("a", Controllability::kControllable);
  const auto u = sys.add_channel("u", Controllability::kUncontrollable);
  Process& plant = sys.add_process("P", Controllability::kUncontrollable);
  const LocId la = plant.add_location("A");
  const LocId lb = plant.add_location("B");
  const LocId ls = plant.add_location("S");
  plant.add_edge(la, lb).receive(a).guard(x <= 2);
  plant.add_edge(la, ls).send(u).guard(x >= 3);
  Process& env = sys.add_process("E", Controllability::kControllable);
  const LocId e0 = env.add_location("E0");
  env.add_edge(e0, e0).send(a);
  env.add_edge(e0, e0).receive(u);
  sys.finalize();

  const auto sol = solve(sys, "control: A[] !P.S");
  EXPECT_TRUE(sol->winning_from_initial());
  semantics::DiscreteKey key{{la, e0}, sys.data().initial_state()};
  const auto k = sol->graph().find_key(key);
  ASSERT_TRUE(k.has_value());
  const auto safe_at = [&](std::int64_t ticks) {  // scale 2
    const std::vector<std::int64_t> p = {0, ticks};
    return sol->rank(*k, p, 2).has_value();
  };
  EXPECT_TRUE(safe_at(0));
  EXPECT_TRUE(safe_at(4));    // x = 2: the last escape instant
  EXPECT_FALSE(safe_at(5));   // x = 2.5: inside the gap
  EXPECT_FALSE(safe_at(20));  // x = 10
}

// A weak invariant deadline where the tester's ONLY enabled action
// leads into ¬φ: the run cannot block while an action is enabled
// (Def. 7/8 maximal-run semantics), so the tester is forced to ruin
// φ itself — the FORCED set with swapped roles.
TEST(GameSolver, SafetyForcedControllableMoveLoses) {
  System sys("s4");
  const auto x = sys.add_clock("x");
  const auto a = sys.add_channel("a", Controllability::kControllable);
  Process& plant = sys.add_process("P", Controllability::kUncontrollable);
  const LocId la = plant.add_location("A");
  const LocId ls = plant.add_location("S");
  plant.set_invariant(la, x <= 2);
  plant.add_edge(la, ls).receive(a);
  Process& env = sys.add_process("E", Controllability::kControllable);
  const LocId e0 = env.add_location("E0");
  env.add_edge(e0, e0).send(a);
  sys.finalize();

  const auto sol = solve(sys, "control: A[] !P.S");
  EXPECT_FALSE(sol->winning_from_initial());
}

// Same shape with a STRICT invariant: the deadline is never attained,
// no action is ever forced, and idling in A maintains φ forever.
TEST(GameSolver, SafetyStrictInvariantDoesNotForce) {
  System sys("s5");
  const auto x = sys.add_clock("x");
  const auto a = sys.add_channel("a", Controllability::kControllable);
  Process& plant = sys.add_process("P", Controllability::kUncontrollable);
  const LocId la = plant.add_location("A");
  const LocId ls = plant.add_location("S");
  plant.set_invariant(la, x < 2);
  plant.add_edge(la, ls).receive(a);
  Process& env = sys.add_process("E", Controllability::kControllable);
  const LocId e0 = env.add_location("E0");
  env.add_edge(e0, e0).send(a);
  sys.finalize();

  const auto sol = solve(sys, "control: A[] !P.S");
  EXPECT_TRUE(sol->winning_from_initial());
}

TEST(GameSolver, SmartLightSafetyObjectives) {
  models::SmartLight m = models::make_smart_light();
  // Never touching keeps the light Off forever.
  EXPECT_TRUE(
      solve(m.system, "control: A[] IUT.Off")->winning_from_initial());
  EXPECT_TRUE(
      solve(m.system, "control: A[] !IUT.Bright")->winning_from_initial());
  // φ false at the initial state: immediately lost.
  const auto sol = solve(m.system, "control: A[] IUT.Bright");
  EXPECT_FALSE(sol->goal_key(sol->graph().initial_key()));
  EXPECT_FALSE(sol->winning_from_initial());
}

}  // namespace
}  // namespace tigat::game
