// Thread-count determinism of the parallel solving pipeline.
//
// SolverOptions::threads promises bit-identical results at any value:
// exploration interns keys CONCURRENTLY into the striped map
// (util/striped_intern.h) but numbers them in serial-FIFO rank order
// whatever the pool size, and the Jacobi fixpoint stages per-key gains
// that are merged in key index order.  This test solves the LEP
// (n = 4) and the Smart Light with 1, 2 and 8 threads — with
// compact_zones off AND on — and asserts identical verdicts, per-key
// winning federations, ranks/round counts, and strategy-guided traces.
// Safety games (`A[] φ`, the dual fixpoint) get the same treatment.
// It is the test the CI ThreadSanitizer job leans on.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "game/solver.h"
#include "game/strategy.h"
#include "models/lep.h"
#include "models/smart_light.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "testing/executor.h"
#include "testing/simulated_imp.h"

namespace tigat::game {
namespace {

using tsystem::TestPurpose;

std::shared_ptr<const GameSolution> solve_with_threads(
    const tsystem::System& sys, const std::string& prop, unsigned threads,
    bool compact = false) {
  SolverOptions options;
  options.threads = threads;
  options.compact_zones = compact;
  GameSolver solver(sys, TestPurpose::parse(sys, prop), options);
  return solver.solve();
}

// Structural + semantic equality of two solutions of the same game.
void expect_same_solution(const GameSolution& a, const GameSolution& b,
                          unsigned threads) {
  SCOPED_TRACE("threads=" + std::to_string(threads));
  EXPECT_EQ(a.winning_from_initial(), b.winning_from_initial());
  EXPECT_EQ(a.stats().rounds, b.stats().rounds);
  EXPECT_EQ(a.stats().keys, b.stats().keys);
  EXPECT_EQ(a.stats().edges, b.stats().edges);
  EXPECT_EQ(a.stats().reach_zones, b.stats().reach_zones);
  EXPECT_EQ(a.stats().winning_zones, b.stats().winning_zones);
  ASSERT_EQ(a.graph().key_count(), b.graph().key_count());
  dbm::Fed scratch_a(a.graph().system().clock_count());
  dbm::Fed scratch_b(b.graph().system().clock_count());
  for (std::uint32_t k = 0; k < a.graph().key_count(); ++k) {
    // Key numbering must agree exactly, not just up to permutation.
    ASSERT_EQ(a.graph().key(k).locs, b.graph().key(k).locs) << "key " << k;
    EXPECT_EQ(a.goal_key(k), b.goal_key(k)) << "key " << k;
    EXPECT_TRUE(a.graph().reach(k, scratch_a)
                    .same_set_as(b.graph().reach(k, scratch_b)))
        << "reach of key " << k;
    EXPECT_TRUE(a.winning(k).same_set_as(b.winning(k))) << "key " << k;
    const auto& da = a.deltas(k);
    const auto& db = b.deltas(k);
    ASSERT_EQ(da.size(), db.size()) << "key " << k;
    for (std::size_t i = 0; i < da.size(); ++i) {
      EXPECT_EQ(da[i].round, db[i].round) << "key " << k << " delta " << i;
      EXPECT_TRUE(da[i].gained.same_set_as(db[i].gained))
          << "key " << k << " delta " << i;
      EXPECT_TRUE(a.winning_up_to(k, da[i].round)
                      .same_set_as(b.winning_up_to(k, db[i].round)))
          << "key " << k << " round " << da[i].round;
    }
  }
}

TEST(SolverDeterminism, LepN4AcrossThreadCounts) {
  models::Lep lep = models::make_lep({.nodes = 4});
  const auto base = solve_with_threads(lep.system, models::lep_tp1(), 1);
  for (const unsigned threads : {2u, 8u}) {
    const auto sol = solve_with_threads(lep.system, models::lep_tp1(), threads);
    expect_same_solution(*base, *sol, threads);
    // The textual strategy is the artifact a tester ships; identical
    // federations must render identically.
    EXPECT_EQ(Strategy(base).to_string(), Strategy(sol).to_string());
  }
}

TEST(SolverDeterminism, LepN4CompactZonesAcrossThreadCounts) {
  // The striped interner + pooled storage path: compact solutions at
  // every thread count must equal the plain serial solution exactly.
  models::Lep lep = models::make_lep({.nodes = 4});
  const auto base = solve_with_threads(lep.system, models::lep_tp1(), 1);
  for (const unsigned threads : {1u, 2u, 8u}) {
    const auto sol = solve_with_threads(lep.system, models::lep_tp1(), threads,
                                        /*compact=*/true);
    expect_same_solution(*base, *sol, threads);
    EXPECT_EQ(Strategy(base).to_string(), Strategy(sol).to_string());
  }
}

TEST(SolverDeterminism, SmartLightAcrossThreadCounts) {
  models::SmartLight spec = models::make_smart_light();
  for (const char* prop :
       {"control: A<> IUT.Bright", "control: A<> IUT.Dim"}) {
    const auto base = solve_with_threads(spec.system, prop, 1);
    for (const unsigned threads : {2u, 8u}) {
      const auto sol = solve_with_threads(spec.system, prop, threads);
      expect_same_solution(*base, *sol, threads);
      EXPECT_EQ(Strategy(base).to_string(), Strategy(sol).to_string());
    }
  }
}

TEST(SolverDeterminism, SafetyAcrossThreadCounts) {
  // Safety games (`A[] φ`) run the same parallel wave + Jacobi rounds
  // with the roles flipped, then publish Safe = Reach \ Attr as serial
  // round-0 deltas — so the thread-count promise carries over intact.
  models::SmartLight spec = models::make_smart_light();
  for (const char* prop :
       {"control: A[] !IUT.Bright", "control: A[] IUT.Off"}) {
    const auto base = solve_with_threads(spec.system, prop, 1);
    for (const unsigned threads : {2u, 8u}) {
      const auto sol = solve_with_threads(spec.system, prop, threads);
      expect_same_solution(*base, *sol, threads);
      EXPECT_EQ(Strategy(base).to_string(), Strategy(sol).to_string());
    }
  }
}

TEST(SolverDeterminism, SafetyCompactZonesAcrossThreadCounts) {
  // Pooled zone storage under the safety fixpoint: compact solutions at
  // every thread count must equal the plain serial solution exactly.
  models::SmartLight spec = models::make_smart_light();
  const char* prop = "control: A[] !IUT.Bright";
  const auto base = solve_with_threads(spec.system, prop, 1);
  for (const unsigned threads : {1u, 2u, 8u}) {
    const auto sol =
        solve_with_threads(spec.system, prop, threads, /*compact=*/true);
    expect_same_solution(*base, *sol, threads);
    EXPECT_EQ(Strategy(base).to_string(), Strategy(sol).to_string());
  }
}

TEST(SolverDeterminism, TracedSolvesBitIdentical) {
  // The obs layer promises pure observation: spans and counters never
  // synchronize threads or alter control flow, so a fully instrumented
  // solve equals the untraced baseline bit for bit at any thread count.
  models::Lep lep = models::make_lep({.nodes = 4});
  const auto base = solve_with_threads(lep.system, models::lep_tp1(), 1);
  obs::Tracer::instance().enable();
  obs::enable_metrics();
  for (const unsigned threads : {1u, 8u}) {
    const auto sol = solve_with_threads(lep.system, models::lep_tp1(), threads);
    expect_same_solution(*base, *sol, threads);
    EXPECT_EQ(Strategy(base).to_string(), Strategy(sol).to_string());
  }
  obs::Tracer::instance().disable();
  obs::disable_metrics();
  EXPECT_GT(obs::Tracer::instance().recorded_spans(), 0u);
}

TEST(SolverDeterminism, StrategyGuidedTracesIdentical) {
  // Execute the strategies from differently-threaded solves against the
  // same deterministic implementation: the guided runs must coincide
  // event for event.
  constexpr std::int64_t kScale = 16;
  models::SmartLight spec = models::make_smart_light();
  models::SmartLight plant = models::make_smart_light_plant_only();
  const auto base =
      solve_with_threads(spec.system, "control: A<> IUT.Bright", 1);
  Strategy base_strategy(base);
  testing::SimulatedImplementation base_imp(plant.system, kScale,
                                            testing::ImpPolicy{kScale, {}});
  testing::TestExecutor base_exec(base_strategy, base_imp, kScale);
  const testing::TestReport base_report = base_exec.run();

  for (const unsigned threads : {2u, 8u}) {
    const auto sol =
        solve_with_threads(spec.system, "control: A<> IUT.Bright", threads);
    Strategy strategy(sol);
    testing::SimulatedImplementation imp(plant.system, kScale,
                                         testing::ImpPolicy{kScale, {}});
    testing::TestExecutor exec(strategy, imp, kScale);
    const testing::TestReport report = exec.run();
    EXPECT_EQ(base_report.verdict, report.verdict) << "threads " << threads;
    EXPECT_EQ(base_report.trace_string(), report.trace_string())
        << "threads " << threads;
    EXPECT_EQ(base_report.total_ticks, report.total_ticks);
    EXPECT_EQ(base_report.steps, report.steps);
  }
}

}  // namespace
}  // namespace tigat::game
