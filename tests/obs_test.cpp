// The observability layer's own contract (src/obs/):
//
//   * the exported trace is well-formed Chrome trace-event JSON whose
//     B/E events balance per thread row, even under an 8-thread solve
//     with worker threads that die before the export;
//   * worker threads appear under their OS names ("tigat-w<i>") in the
//     thread_name metadata;
//   * the metric counters the solver publishes equal SolverStats
//     EXACTLY — same integers, not approximations — at 1 and 8
//     threads;
//   * histogram bucket boundaries follow `v <= bound` semantics at the
//     exact edges.
//
// (Solver bit-identity with tracing on/off lives in
// solver_determinism_test.cpp, next to the other determinism
// dimensions.)
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "game/solver.h"
#include "models/lep.h"
#include "obs/metrics.h"
#include "obs/progress.h"
#include "obs/trace.h"

namespace tigat::obs {
namespace {

// ---- a minimal JSON reader, enough to validate and walk the trace ----

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  [[nodiscard]] const JsonValue* get(const std::string& key) const {
    const auto it = object.find(key);
    return it == object.end() ? nullptr : &it->second;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  bool parse(JsonValue& out) {
    skip_ws();
    if (!value(out)) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }
  bool literal(const char* lit) {
    const std::size_t len = std::char_traits<char>::length(lit);
    if (s_.compare(pos_, len, lit) != 0) return false;
    pos_ += len;
    return true;
  }
  bool string(std::string& out) {
    if (pos_ >= s_.size() || s_[pos_] != '"') return false;
    ++pos_;
    out.clear();
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') {
        if (++pos_ >= s_.size()) return false;
        switch (s_[pos_]) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            if (pos_ + 4 >= s_.size()) return false;
            pos_ += 4;  // surrogate pairs not needed for these artifacts
            out += '?';
            break;
          }
          default: return false;
        }
        ++pos_;
      } else {
        out += s_[pos_++];
      }
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }
  bool value(JsonValue& out) {
    if (pos_ >= s_.size()) return false;
    const char c = s_[pos_];
    if (c == '{') {
      out.kind = JsonValue::Kind::kObject;
      ++pos_;
      skip_ws();
      if (pos_ < s_.size() && s_[pos_] == '}') return ++pos_, true;
      for (;;) {
        skip_ws();
        std::string key;
        if (!string(key)) return false;
        skip_ws();
        if (pos_ >= s_.size() || s_[pos_++] != ':') return false;
        skip_ws();
        JsonValue child;
        if (!value(child)) return false;
        out.object.emplace(std::move(key), std::move(child));
        skip_ws();
        if (pos_ >= s_.size()) return false;
        if (s_[pos_] == ',') {
          ++pos_;
          continue;
        }
        if (s_[pos_] == '}') return ++pos_, true;
        return false;
      }
    }
    if (c == '[') {
      out.kind = JsonValue::Kind::kArray;
      ++pos_;
      skip_ws();
      if (pos_ < s_.size() && s_[pos_] == ']') return ++pos_, true;
      for (;;) {
        skip_ws();
        JsonValue child;
        if (!value(child)) return false;
        out.array.push_back(std::move(child));
        skip_ws();
        if (pos_ >= s_.size()) return false;
        if (s_[pos_] == ',') {
          ++pos_;
          continue;
        }
        if (s_[pos_] == ']') return ++pos_, true;
        return false;
      }
    }
    if (c == '"') {
      out.kind = JsonValue::Kind::kString;
      return string(out.string);
    }
    if (c == 't') {
      out.kind = JsonValue::Kind::kBool;
      out.boolean = true;
      return literal("true");
    }
    if (c == 'f') {
      out.kind = JsonValue::Kind::kBool;
      out.boolean = false;
      return literal("false");
    }
    if (c == 'n') return literal("null");
    out.kind = JsonValue::Kind::kNumber;
    const std::size_t start = pos_;
    while (pos_ < s_.size() &&
           (s_[pos_] == '-' || s_[pos_] == '+' || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E' ||
            (s_[pos_] >= '0' && s_[pos_] <= '9'))) {
      ++pos_;
    }
    if (pos_ == start) return false;
    out.number = std::stod(s_.substr(start, pos_ - start));
    return true;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

std::shared_ptr<const game::GameSolution> solve_lep(unsigned threads) {
  models::Lep lep = models::make_lep({.nodes = 3});
  game::SolverOptions options;
  options.threads = threads;
  game::GameSolver solver(
      lep.system, tsystem::TestPurpose::parse(lep.system, models::lep_tp1()),
      options);
  return solver.solve();
}

TEST(ObsTrace, ChromeTraceBalancedUnderEightThreadSolve) {
  Tracer::instance().enable();
  const auto solution = solve_lep(8);
  Tracer::instance().disable();
  ASSERT_TRUE(solution->winning_from_initial());
  EXPECT_GT(Tracer::instance().recorded_spans(), 0u);
  EXPECT_EQ(Tracer::instance().dropped_spans(), 0u);

  const std::string json = Tracer::instance().chrome_trace_json();
  JsonValue doc;
  ASSERT_TRUE(JsonParser(json).parse(doc)) << "trace is not valid JSON";
  const JsonValue* events = doc.get("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->kind, JsonValue::Kind::kArray);

  // Replay every duration event against a per-tid stack: B pushes,
  // E must pop its own name, all stacks must drain.
  std::map<double, std::vector<std::string>> stacks;
  bool saw_named_worker = false;
  std::size_t duration_events = 0;
  for (const JsonValue& e : events->array) {
    const JsonValue* ph = e.get("ph");
    const JsonValue* name = e.get("name");
    const JsonValue* tid = e.get("tid");
    ASSERT_NE(ph, nullptr);
    ASSERT_NE(name, nullptr);
    ASSERT_NE(tid, nullptr);
    if (ph->string == "M") {
      if (name->string == "thread_name") {
        const JsonValue* args = e.get("args");
        ASSERT_NE(args, nullptr);
        const JsonValue* tname = args->get("name");
        ASSERT_NE(tname, nullptr);
        if (tname->string.rfind("tigat-w", 0) == 0) saw_named_worker = true;
      }
      continue;
    }
    ++duration_events;
    auto& stack = stacks[tid->number];
    if (ph->string == "B") {
      stack.push_back(name->string);
    } else {
      ASSERT_EQ(ph->string, "E");
      ASSERT_FALSE(stack.empty()) << "E without a B on tid " << tid->number;
      EXPECT_EQ(stack.back(), name->string);
      stack.pop_back();
    }
  }
  EXPECT_GT(duration_events, 0u);
  for (const auto& [tid, stack] : stacks) {
    EXPECT_TRUE(stack.empty()) << "unbalanced spans on tid " << tid;
  }
  // An 8-thread solve must have recorded at least one named worker row.
  EXPECT_TRUE(saw_named_worker);
}

TEST(ObsTrace, ReenableDropsOldEvents) {
  Tracer::instance().enable();
  { TIGAT_SPAN("stale"); }
  Tracer::instance().enable();  // restart: the "stale" span must vanish
  { TIGAT_SPAN("fresh"); }
  Tracer::instance().disable();
  EXPECT_EQ(Tracer::instance().recorded_spans(), 1u);
  const std::string json = Tracer::instance().chrome_trace_json();
  EXPECT_EQ(json.find("stale"), std::string::npos);
  EXPECT_NE(json.find("fresh"), std::string::npos);
}

TEST(ObsMetrics, SolverCountersEqualSolverStatsExactly) {
  for (const unsigned threads : {1u, 8u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    enable_metrics();
    metrics().reset();
    const auto solution = solve_lep(threads);
    disable_metrics();
    const game::SolverStats& st = solution->stats();
    EXPECT_EQ(metrics().counter("solver.keys").value(), st.keys);
    EXPECT_EQ(metrics().counter("solver.reach_zones").value(),
              st.reach_zones);
    EXPECT_EQ(metrics().counter("solver.winning_zones").value(),
              st.winning_zones);
    EXPECT_EQ(metrics().counter("solver.edges").value(), st.edges);
    EXPECT_EQ(metrics().counter("solver.rounds").value(), st.rounds);
    // The per-round gain counters must account for every winning zone
    // except round 0's goal seeds.
    EXPECT_GT(metrics().counter("solver.fixpoint.gained_keys").value(), 0u);
    EXPECT_LE(metrics().counter("solver.fixpoint.gained_zones").value(),
              st.winning_zones);
  }
}

TEST(ObsMetrics, SnapshotIsValidVersionedJson) {
  enable_metrics();
  metrics().reset();
  metrics().counter("test.counter").add(3);
  metrics().gauge("test.gauge").set(1.5);
  metrics().histogram("test.hist", latency_buckets_ns()).record(17);
  disable_metrics();

  JsonValue doc;
  ASSERT_TRUE(JsonParser(metrics().snapshot_json()).parse(doc));
  ASSERT_NE(doc.get("schema"), nullptr);
  EXPECT_EQ(doc.get("schema")->string, "tigat.metrics");
  ASSERT_NE(doc.get("version"), nullptr);
  EXPECT_EQ(doc.get("version")->number, 1.0);
  const JsonValue* counters = doc.get("counters");
  ASSERT_NE(counters, nullptr);
  ASSERT_NE(counters->get("test.counter"), nullptr);
  EXPECT_EQ(counters->get("test.counter")->number, 3.0);
  const JsonValue* gauges = doc.get("gauges");
  ASSERT_NE(gauges, nullptr);
  EXPECT_EQ(gauges->get("test.gauge")->number, 1.5);
  const JsonValue* hists = doc.get("histograms");
  ASSERT_NE(hists, nullptr);
  const JsonValue* hist = hists->get("test.hist");
  ASSERT_NE(hist, nullptr);
  ASSERT_NE(hist->get("bounds"), nullptr);
  ASSERT_NE(hist->get("counts"), nullptr);
  EXPECT_EQ(hist->get("counts")->array.size(),
            hist->get("bounds")->array.size() + 1);
  EXPECT_EQ(hist->get("count")->number, 1.0);
  EXPECT_EQ(hist->get("sum")->number, 17.0);
}

TEST(ObsMetrics, HistogramBucketBoundaries) {
  const std::vector<std::uint64_t> bounds{10, 100, 1000};
  // le semantics: bucket i counts v <= bounds[i]; the implicit last
  // bucket counts the overflow.
  EXPECT_EQ(Histogram::bucket_index(bounds, 0), 0u);
  EXPECT_EQ(Histogram::bucket_index(bounds, 9), 0u);
  EXPECT_EQ(Histogram::bucket_index(bounds, 10), 0u);   // exact edge
  EXPECT_EQ(Histogram::bucket_index(bounds, 11), 1u);
  EXPECT_EQ(Histogram::bucket_index(bounds, 100), 1u);  // exact edge
  EXPECT_EQ(Histogram::bucket_index(bounds, 101), 2u);
  EXPECT_EQ(Histogram::bucket_index(bounds, 1000), 2u);
  EXPECT_EQ(Histogram::bucket_index(bounds, 1001), 3u);  // overflow
  EXPECT_EQ(Histogram::bucket_index(bounds, UINT64_MAX), 3u);

  Histogram h(bounds);
  h.record(10);
  h.record(11);
  h.record(5000);
  EXPECT_EQ(h.bucket_count(0), 1u);
  EXPECT_EQ(h.bucket_count(1), 1u);
  EXPECT_EQ(h.bucket_count(2), 0u);
  EXPECT_EQ(h.bucket_count(3), 1u);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum(), 10u + 11u + 5000u);

  // The shared latency vocabulary is strictly increasing powers of 2.
  const auto latency = latency_buckets_ns();
  ASSERT_FALSE(latency.empty());
  EXPECT_EQ(latency.front(), 16u);
  for (std::size_t i = 1; i < latency.size(); ++i) {
    EXPECT_EQ(latency[i], latency[i - 1] * 2);
  }
}

TEST(ObsProgress, HeartbeatEmitsJsonLines) {
  std::FILE* tmp = std::tmpfile();
  ASSERT_NE(tmp, nullptr);
  progress().enable(/*period_seconds=*/3600.0, tmp);
  progress().tick("explore", 10, 20, 1);   // first tick: immediate
  progress().tick("explore", 11, 21, 2);   // inside the period: dropped
  progress().emit("done", 12, 22, 3);      // final line: unconditional
  progress().disable();

  std::rewind(tmp);
  std::string content;
  char buf[512];
  while (std::fgets(buf, sizeof buf, tmp) != nullptr) content += buf;
  std::fclose(tmp);

  std::vector<std::string> lines;
  std::size_t start = 0;
  while (start < content.size()) {
    const std::size_t nl = content.find('\n', start);
    ASSERT_NE(nl, std::string::npos) << "unterminated heartbeat line";
    lines.push_back(content.substr(start, nl - start));
    start = nl + 1;
  }
  ASSERT_EQ(lines.size(), 2u);
  for (const std::string& line : lines) {
    JsonValue doc;
    ASSERT_TRUE(JsonParser(line).parse(doc)) << line;
    ASSERT_NE(doc.get("tigat_hb"), nullptr);
    ASSERT_NE(doc.get("elapsed_s"), nullptr);
    ASSERT_NE(doc.get("phase"), nullptr);
    ASSERT_NE(doc.get("rss_mb"), nullptr);
  }
  JsonValue last;
  ASSERT_TRUE(JsonParser(lines.back()).parse(last));
  EXPECT_EQ(last.get("phase")->string, "done");
  EXPECT_EQ(last.get("keys")->number, 12.0);
  EXPECT_EQ(last.get("zones")->number, 22.0);
  EXPECT_EQ(last.get("round")->number, 3.0);
}

}  // namespace
}  // namespace tigat::obs
