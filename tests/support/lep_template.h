// Loads the shipped LEP template (examples/models/lep.tg) at a given
// instance size — the test-side twin of `run_model --param N=n`.
// Shared by the template roundtrip and decision-fingerprint suites so
// the parameter name and model path live in one place.
#pragma once

#include <string>

#include "lang/lang.h"

#ifndef TIGAT_MODEL_DIR
#error "TIGAT_MODEL_DIR must point at examples/models"
#endif

namespace tigat::test_support {

inline std::string lep_template_path() {
  return std::string(TIGAT_MODEL_DIR) + "/lep.tg";
}

inline lang::LoadedModel load_lep_template(std::int64_t n) {
  lang::CompileOptions options;
  options.params = {{"N", n}};
  return lang::load_model(lep_template_path(), options);
}

}  // namespace tigat::test_support
