// Golden-corpus runner for .tg diagnostics: compiles one bad input and
// compares the FULL rendered report (messages, positions, snippets,
// carets, instantiation-trace notes) against a checked-in .expected
// file.  CMake registers one CTest case per corpus input, so a failure
// names the exact file.
//
//   corpus_runner <input.tg> <expected.txt>          verify
//   corpus_runner <input.tg> <expected.txt> --update regenerate golden
//
// Reports are rendered against the input's basename so the goldens are
// independent of the checkout path.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "lang/lang.h"

namespace {

std::string basename_of(const std::string& path) {
  const std::size_t slash = path.find_last_of("/\\");
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

bool read_file(const std::string& path, std::string& out) {
  std::ifstream file(path, std::ios::binary);
  if (!file) return false;
  std::ostringstream buffer;
  buffer << file.rdbuf();
  out = buffer.str();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: corpus_runner <input.tg> <expected.txt> "
                 "[--update]\n");
    return 2;
  }
  const std::string input_path = argv[1];
  const std::string expected_path = argv[2];
  const bool update = argc > 3 && std::strcmp(argv[3], "--update") == 0;

  std::string source;
  if (!read_file(input_path, source)) {
    std::fprintf(stderr, "cannot read %s\n", input_path.c_str());
    return 2;
  }

  const std::string name = basename_of(input_path);
  std::vector<tigat::lang::Diagnostic> diagnostics;
  const auto model = tigat::lang::compile_model(source, name, diagnostics);

  std::string actual;
  for (const tigat::lang::Diagnostic& d : diagnostics) {
    if (!actual.empty()) actual += "\n";
    actual += d.render(name);
  }
  actual += "\n";

  if (model.has_value()) {
    std::fprintf(stderr,
                 "%s: compiled WITHOUT errors — every corpus input must be "
                 "rejected\n",
                 input_path.c_str());
    return 1;
  }

  if (update) {
    std::ofstream out(expected_path, std::ios::binary | std::ios::trunc);
    out << actual;
    std::printf("updated %s\n", expected_path.c_str());
    return 0;
  }

  std::string expected;
  if (!read_file(expected_path, expected)) {
    std::fprintf(stderr,
                 "cannot read %s (run with --update to create it)\n",
                 expected_path.c_str());
    return 1;
  }
  if (expected != actual) {
    std::fprintf(stderr,
                 "%s: diagnostics changed\n"
                 "---- expected (%s) ----\n%s"
                 "---- actual ----\n%s"
                 "----\n"
                 "(re-bless with: corpus_runner %s %s --update)\n",
                 input_path.c_str(), expected_path.c_str(), expected.c_str(),
                 actual.c_str(), input_path.c_str(), expected_path.c_str());
    return 1;
  }
  return 0;
}
