#include "support/grid_oracle.h"

#include <algorithm>

#include "util/assert.h"

namespace tigat::test {

GridOracle::GridOracle(std::uint32_t dim, std::int32_t max_const)
    : dim_(dim), window_(2 * kScale * max_const + 2 * kSampleStep) {
  TIGAT_ASSERT(dim >= 2, "need at least one real clock");
  Point p(dim, 0);
  while (true) {
    samples_.push_back(p);
    std::uint32_t i = 1;
    while (i < dim && p[i] >= window_) {
      p[i] = 0;
      ++i;
    }
    if (i == dim) break;
    p[i] += kSampleStep;
  }
}

GridOracle::PointSet GridOracle::points_of(const dbm::Dbm& z) const {
  PointSet out;
  for (const Point& p : samples_) {
    if (z.contains_point(p, kScale)) out.insert(p);
  }
  return out;
}

GridOracle::PointSet GridOracle::points_of(const dbm::Fed& f) const {
  PointSet out;
  for (const Point& p : samples_) {
    if (f.contains_point(p, kScale)) out.insert(p);
  }
  return out;
}

bool GridOracle::in_down(const dbm::Fed& f, const Point& p) const {
  Point q = p;
  for (std::int64_t d = 0; d <= 2 * window_; ++d) {
    for (std::uint32_t i = 1; i < dim_; ++i) q[i] = p[i] + d;
    if (f.contains_point(q, kScale)) return true;
  }
  return false;
}

bool GridOracle::in_up(const dbm::Fed& f, const Point& p) const {
  std::int64_t max_back = 2 * window_;
  for (std::uint32_t i = 1; i < dim_; ++i) max_back = std::min(max_back, p[i]);
  Point q = p;
  for (std::int64_t d = 0; d <= max_back; ++d) {
    for (std::uint32_t i = 1; i < dim_; ++i) q[i] = p[i] - d;
    if (f.contains_point(q, kScale)) return true;
  }
  return false;
}

bool GridOracle::in_pred_t(const dbm::Fed& good, const dbm::Fed& bad,
                           const Point& p) const {
  Point q = p;
  for (std::int64_t d = 0; d <= 2 * window_; ++d) {
    for (std::uint32_t i = 1; i < dim_; ++i) q[i] = p[i] + d;
    if (bad.contains_point(q, kScale)) return false;  // closed avoidance
    if (good.contains_point(q, kScale)) return true;
  }
  return false;
}

bool GridOracle::in_reset(const dbm::Dbm& z, std::uint32_t k,
                          const Point& p) const {
  if (p[k] != 0) return false;
  Point q = p;
  for (std::int64_t v = 0; v <= window_; ++v) {
    q[k] = v;
    if (z.contains_point(q, kScale)) return true;
  }
  return false;
}

bool GridOracle::in_free(const dbm::Dbm& z, std::uint32_t k,
                         const Point& p) const {
  Point q = p;
  for (std::int64_t v = 0; v <= window_; ++v) {
    q[k] = v;
    if (z.contains_point(q, kScale)) return true;
  }
  return false;
}

dbm::Dbm GridOracle::random_zone(util::Rng& rng, std::int32_t k,
                                 int extra_constraints) const {
  for (int attempt = 0; attempt < 100; ++attempt) {
    dbm::Dbm z = dbm::Dbm::universal(dim_);
    // Keep the zone inside the box so the sweep window is exhaustive.
    for (std::uint32_t i = 1; i < dim_; ++i) {
      z.constrain(i, 0,
                  dbm::make_weak(static_cast<dbm::bound_t>(rng.range(0, k))));
    }
    bool alive = true;
    for (int c = 0; c < extra_constraints && alive; ++c) {
      const auto i = static_cast<std::uint32_t>(rng.range(0, dim_ - 1));
      const auto j = static_cast<std::uint32_t>(rng.range(0, dim_ - 1));
      if (i == j) continue;
      const auto value = static_cast<dbm::bound_t>(rng.range(-k, k));
      const auto strict =
          rng.chance(1, 2) ? dbm::Strict::kWeak : dbm::Strict::kStrict;
      alive = z.constrain(i, j, dbm::make_bound(value, strict));
    }
    if (alive && !z.is_empty()) return z;
  }
  // Fall back to a guaranteed non-empty zone.
  dbm::Dbm z = dbm::Dbm::universal(dim_);
  for (std::uint32_t i = 1; i < dim_; ++i) z.constrain(i, 0, dbm::make_weak(k));
  return z;
}

dbm::Fed GridOracle::random_fed(util::Rng& rng, std::int32_t k,
                                int max_zones) const {
  dbm::Fed f(dim_);
  const auto zones = rng.range(1, max_zones);
  for (std::int64_t z = 0; z < zones; ++z) {
    f.add(random_zone(rng, k, static_cast<int>(rng.range(0, 4))));
  }
  return f;
}

}  // namespace tigat::test
