// Discretised ground-truth model for zone operations.
//
// Test zones use integer model constants in [-K, K] and are kept
// bounded, so every zone lives inside the box [0, K]^n.
//
// Exactness argument.  Everything is scaled by kScale = 8:
//   * constraint constants become multiples of 8;
//   * SAMPLE points (where library results are compared against the
//     oracle) have coordinates that are multiples of 2, i.e. quarter
//     model units.  A non-empty difference of two integer-constant
//     federations with ≤ 3 real clocks always contains a point with
//     denominators ≤ 4 (fractional parts of n clocks can always be
//     spread over a 1/(n+1) grid), so agreement on all sample points
//     implies equality of the dense sets for dim ≤ 4;
//   * QUANTIFIERS inside the oracle (delays, freed clock values) range
//     over multiples of 1, i.e. eighth model units.  Starting from a
//     sample point, the truth value of any constraint along a delay
//     trajectory changes at  8·c − p_i,  a multiple of 2; hence every
//     truth interval — open, closed or punctual — has endpoints in 2ℤ
//     and the step-1 sweep visits its interior (2a, 2a+2) at 2a+1.
//     No dense witness can be missed.
//
// The oracle never re-implements zone membership: it quantifies over
// Dbm::contains_point / Fed::contains_point, whose 5-line comparison
// core is unit-tested independently (dbm_bound_test.cpp).
#pragma once

#include <cstdint>
#include <set>
#include <vector>

#include "dbm/federation.h"
#include "util/rng.h"

namespace tigat::test {

using Point = std::vector<std::int64_t>;  // point[0] == 0, scaled by kScale

class GridOracle {
 public:
  static constexpr std::int64_t kScale = 8;
  static constexpr std::int64_t kSampleStep = 2;

  // dim includes the reference clock.  `max_const` is the largest model
  // constant used by the zones under test; the window is sized so that
  // every bounded-zone trajectory question is decided inside it.
  GridOracle(std::uint32_t dim, std::int32_t max_const);

  [[nodiscard]] std::uint32_t dimension() const { return dim_; }
  [[nodiscard]] std::int64_t window() const { return window_; }
  [[nodiscard]] const std::vector<Point>& sample_points() const {
    return samples_;
  }

  // Set-style view, used in failure messages and simple identities.
  using PointSet = std::set<Point>;
  [[nodiscard]] PointSet points_of(const dbm::Dbm& z) const;
  [[nodiscard]] PointSet points_of(const dbm::Fed& f) const;

  // Reference predicates, evaluated at a sample point.
  [[nodiscard]] bool in_down(const dbm::Fed& f, const Point& p) const;
  [[nodiscard]] bool in_up(const dbm::Fed& f, const Point& p) const;
  [[nodiscard]] bool in_pred_t(const dbm::Fed& good, const dbm::Fed& bad,
                               const Point& p) const;
  // x_k := 0 image.
  [[nodiscard]] bool in_reset(const dbm::Dbm& z, std::uint32_t k,
                              const Point& p) const;
  [[nodiscard]] bool in_free(const dbm::Dbm& z, std::uint32_t k,
                             const Point& p) const;

  // Random bounded zone with constants in [-k, k]; never empty.
  [[nodiscard]] dbm::Dbm random_zone(util::Rng& rng, std::int32_t k,
                                     int extra_constraints) const;
  [[nodiscard]] dbm::Fed random_fed(util::Rng& rng, std::int32_t k,
                                    int max_zones) const;

 private:
  std::uint32_t dim_;
  std::int64_t window_;            // max scaled coordinate swept
  std::vector<Point> samples_;     // coarse grid, step kSampleStep
};

}  // namespace tigat::test
