// Structural equality of two tsystem::System instances, gtest style:
// same declarations in the same order, same per-process location/edge
// skeleton and game partition.  Shared by the .tg roundtrip test (the
// hand-unrolled models) and the template test (stamped instances vs
// the C++ builders at every n).
#pragma once

#include <gtest/gtest.h>

#include <string>

#include "tsystem/system.h"

namespace tigat::test_support {

inline void expect_same_structure(const tsystem::System& parsed,
                                  const tsystem::System& built) {
  EXPECT_EQ(parsed.name(), built.name());
  ASSERT_EQ(parsed.clock_count(), built.clock_count());
  EXPECT_EQ(parsed.clock_names(), built.clock_names());
  ASSERT_EQ(parsed.channels().size(), built.channels().size());
  for (std::size_t c = 0; c < built.channels().size(); ++c) {
    EXPECT_EQ(parsed.channels()[c].name, built.channels()[c].name);
    EXPECT_EQ(parsed.channels()[c].control, built.channels()[c].control);
  }
  EXPECT_EQ(parsed.data().slot_count(), built.data().slot_count());
  EXPECT_EQ(parsed.data().decl_count(), built.data().decl_count());
  EXPECT_EQ(parsed.data().initial_state(), built.data().initial_state());
  EXPECT_EQ(parsed.max_constants(), built.max_constants());

  ASSERT_EQ(parsed.processes().size(), built.processes().size());
  for (std::size_t pi = 0; pi < built.processes().size(); ++pi) {
    const tsystem::Process& p = parsed.processes()[pi];
    const tsystem::Process& b = built.processes()[pi];
    SCOPED_TRACE("process " + b.name());
    EXPECT_EQ(p.name(), b.name());
    EXPECT_EQ(p.default_control(), b.default_control());
    EXPECT_EQ(p.initial(), b.initial());
    ASSERT_EQ(p.locations().size(), b.locations().size());
    for (std::size_t li = 0; li < b.locations().size(); ++li) {
      EXPECT_EQ(p.locations()[li].name, b.locations()[li].name);
      EXPECT_EQ(p.locations()[li].kind, b.locations()[li].kind);
      EXPECT_EQ(p.locations()[li].invariant.size(),
                b.locations()[li].invariant.size());
    }
    ASSERT_EQ(p.edges().size(), b.edges().size());
    for (std::size_t ei = 0; ei < b.edges().size(); ++ei) {
      SCOPED_TRACE("edge " + std::to_string(ei));
      const tsystem::Edge& e = p.edges()[ei];
      const tsystem::Edge& f = b.edges()[ei];
      EXPECT_EQ(e.src, f.src);
      EXPECT_EQ(e.dst, f.dst);
      EXPECT_EQ(e.sync, f.sync);
      EXPECT_EQ(e.channel.id, f.channel.id);
      EXPECT_EQ(e.guard.size(), f.guard.size());
      for (std::size_t g = 0; g < f.guard.size(); ++g) {
        EXPECT_EQ(e.guard[g].i, f.guard[g].i);
        EXPECT_EQ(e.guard[g].j, f.guard[g].j);
        EXPECT_EQ(e.guard[g].bound, f.guard[g].bound);
      }
      EXPECT_EQ(e.data_guard.is_null(), f.data_guard.is_null());
      EXPECT_EQ(e.resets.size(), f.resets.size());
      EXPECT_EQ(e.assignments.size(), f.assignments.size());
      EXPECT_EQ(parsed.edge_controllable(p, e), built.edge_controllable(b, f));
    }
  }
}

}  // namespace tigat::test_support
