// Chaos suite: deterministic fault injection at the IUT boundary and
// the resilient campaign layer above it.
//
// The properties under test are the robustness analogue of the paper's
// Theorem 10 (soundness): under ANY injected boundary fault schedule
//   * no run hangs past its wall-clock deadline,
//   * no injected crash escapes as an exception,
//   * every FAIL verdict is reproducible with faults disabled
//     (injected faults provably never produce a false FAIL),
//   * identical (seed, spec) inputs yield byte-identical campaign
//     reports.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "decision/source.h"
#include "game/solver.h"
#include "game/strategy.h"
#include "models/lep.h"
#include "models/smart_light.h"
#include "testing/campaign.h"
#include "testing/executor.h"
#include "testing/faults.h"
#include "testing/mutants.h"
#include "testing/simulated_imp.h"
#include "tsystem/rebuild.h"
#include "util/stopwatch.h"

namespace tigat::testing {
namespace {

using game::GameSolver;
using game::Strategy;
using models::make_smart_light;
using models::make_smart_light_plant_only;
using tsystem::TestPurpose;

constexpr std::int64_t kScale = 16;

// ---------------------------------------------------------------- spec

TEST(FaultSpec, ParsesFullGrammarAndRoundTrips) {
  const FaultSpec s =
      FaultSpec::parse("drop=0.05,delay=0..8,dup=0.01,hang@step=40,"
                       "crash@step=120,spurious=0.02,reject=0.1");
  EXPECT_DOUBLE_EQ(s.drop, 0.05);
  EXPECT_DOUBLE_EQ(s.dup, 0.01);
  EXPECT_DOUBLE_EQ(s.spurious, 0.02);
  EXPECT_DOUBLE_EQ(s.reject, 0.1);
  EXPECT_EQ(s.delay_lo, 0);
  EXPECT_EQ(s.delay_hi, 8);
  EXPECT_EQ(s.hang_at_step, 40u);
  EXPECT_EQ(s.crash_at_step, 120u);
  EXPECT_TRUE(s.any());

  // Canonical string round-trips to the same spec regardless of the
  // clause order it was first written in.
  const FaultSpec again = FaultSpec::parse(s.to_string());
  EXPECT_EQ(again.to_string(), s.to_string());
}

TEST(FaultSpec, EmptyStringIsEmptySpec) {
  const FaultSpec s = FaultSpec::parse("");
  EXPECT_FALSE(s.any());
  EXPECT_EQ(s.to_string(), "");
}

TEST(FaultSpec, RejectsMalformedClauses) {
  EXPECT_THROW(FaultSpec::parse("drop=2"), FaultSpecError);
  EXPECT_THROW(FaultSpec::parse("drop=nope"), FaultSpecError);
  EXPECT_THROW(FaultSpec::parse("bogus=0.5"), FaultSpecError);
  EXPECT_THROW(FaultSpec::parse("delay=8..2"), FaultSpecError);
  EXPECT_THROW(FaultSpec::parse("hang@step=0"), FaultSpecError);
  EXPECT_THROW(FaultSpec::parse("drop"), FaultSpecError);
}

// -------------------------------------------------------------- chaos

class ChaosTest : public ::testing::Test {
 protected:
  ChaosTest()
      : spec_(make_smart_light()), plant_(make_smart_light_plant_only()) {}

  [[nodiscard]] Strategy strategy_for(const std::string& prop) const {
    GameSolver solver(spec_.system, TestPurpose::parse(spec_.system, prop));
    return Strategy(solver.solve());
  }

  [[nodiscard]] CampaignReport campaign(const Strategy& strat,
                                        Implementation& imp,
                                        CampaignOptions opts) const {
    const decision::StrategySource source(strat);
    return campaign_run(source, spec_.system, imp, kScale, opts);
  }

  models::SmartLight spec_;
  models::SmartLight plant_;
};

TEST_F(ChaosTest, EmptySpecIsExactPassThrough) {
  const Strategy strat = strategy_for("control: A<> IUT.Bright");

  SimulatedImplementation bare(plant_.system, kScale, ImpPolicy{kScale, {}});
  TestExecutor bare_exec(strat, bare, kScale);
  const TestReport clean = bare_exec.run();

  SimulatedImplementation inner(plant_.system, kScale, ImpPolicy{kScale, {}});
  FaultInjector injector(inner, FaultSpec{}, 42);
  TestExecutor exec(strat, injector, kScale);
  const TestReport wrapped = exec.run();

  EXPECT_EQ(wrapped.verdict, Verdict::kPass) << wrapped.detail;
  EXPECT_EQ(wrapped.harness_faults, 0u);
  EXPECT_EQ(wrapped.trace_string(), clean.trace_string());
}

// The core guarantee: a CONFORMING implementation never FAILs, no
// matter what the boundary does to its outputs — a sweep of seeds over
// a heavy fault mix must produce zero FAIL verdicts.
TEST_F(ChaosTest, NoFalseFailOnConformingImpAcrossSeeds) {
  const Strategy strat = strategy_for("control: A<> IUT.Bright");
  CampaignOptions opts;
  opts.runs = 3;
  opts.retries = 2;
  opts.fault_spec = "drop=0.3,delay=0..16,dup=0.15,spurious=0.1,reject=0.25";

  std::uint64_t injected = 0;
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    opts.fault_seed = seed;
    SimulatedImplementation imp(plant_.system, kScale, ImpPolicy{kScale, {}});
    const CampaignReport report = campaign(strat, imp, opts);
    EXPECT_EQ(report.fails, 0u)
        << "false FAIL at seed " << seed << ": "
        << report.to_json();
    for (const RunOutcome& o : report.outcomes) {
      // The soundness invariant: FAIL implies a clean channel.
      if (o.report.verdict == Verdict::kFail) {
        EXPECT_EQ(o.report.harness_faults, 0u);
      }
      injected += o.report.harness_faults;
    }
  }
  // The sweep must actually have exercised the injector.
  EXPECT_GT(injected, 50u);
}

// Completeness is not sacrificed: a genuinely broken IMP caught under
// faults must still be caught with faults disabled — every chaos FAIL
// reproduces on a clean boundary.
TEST_F(ChaosTest, ChaosFailsReproduceWithFaultsDisabled) {
  const Strategy strat = strategy_for("control: A<> IUT.Bright");
  const auto mutants = enumerate_mutants(plant_.system);
  CampaignOptions opts;
  opts.runs = 2;
  opts.retries = 3;
  opts.fault_spec = "drop=0.1,delay=0..8,dup=0.05";
  opts.fault_seed = 7;

  std::size_t chaos_fails = 0;
  for (const auto& m : mutants) {
    const tsystem::System mutated = apply_mutant(plant_.system, m);
    SimulatedImplementation imp(mutated, kScale, ImpPolicy{0, {}});
    const CampaignReport report = campaign(strat, imp, opts);
    if (report.verdict != CampaignVerdict::kFail) continue;
    ++chaos_fails;

    SimulatedImplementation clean_imp(mutated, kScale, ImpPolicy{0, {}});
    TestExecutor clean_exec(strat, clean_imp, kScale);
    const TestReport clean = clean_exec.run();
    EXPECT_EQ(clean.verdict, Verdict::kFail)
        << "FAIL under faults did not reproduce cleanly for mutant "
        << m.description << " — the chaos verdict was unsound";
  }
  EXPECT_GT(chaos_fails, 0u) << "no mutant was killed under faults; the "
                                "reproducibility check never ran";
}

TEST_F(ChaosTest, InjectedHangEndsWithTheDeadline) {
  const Strategy strat = strategy_for("control: A<> IUT.Bright");
  CampaignOptions opts;
  opts.runs = 2;
  opts.run_deadline_ms = 200;
  opts.fault_spec = "hang@step=5";
  SimulatedImplementation imp(plant_.system, kScale, ImpPolicy{kScale, {}});

  util::Stopwatch watch;
  const CampaignReport report = campaign(strat, imp, opts);
  // 2 runs x 200 ms budget; anything near seconds means the hang
  // escaped its deadline.
  EXPECT_LT(watch.milliseconds(), 5000.0);
  EXPECT_EQ(report.verdict, CampaignVerdict::kUnresponsive);
  EXPECT_EQ(report.deadline_hits, 2u);
  for (const RunOutcome& o : report.outcomes) {
    EXPECT_EQ(o.report.verdict, Verdict::kInconclusive);
    EXPECT_EQ(o.report.code, ReasonCode::kHarnessHang) << o.report.detail;
  }
}

TEST_F(ChaosTest, HangWithoutArmedDeadlineRefusesToBlock) {
  const Strategy strat = strategy_for("control: A<> IUT.Bright");
  SimulatedImplementation inner(plant_.system, kScale, ImpPolicy{kScale, {}});
  FaultInjector injector(inner, FaultSpec::parse("hang@step=3"), 1);
  TestExecutor exec(strat, injector, kScale);

  util::Stopwatch watch;
  const TestReport report = exec.run();
  EXPECT_LT(watch.milliseconds(), 1000.0);
  EXPECT_EQ(report.verdict, Verdict::kInconclusive);
  EXPECT_EQ(report.code, ReasonCode::kHarnessHang) << report.detail;
}

TEST_F(ChaosTest, InjectedCrashIsContained) {
  const Strategy strat = strategy_for("control: A<> IUT.Bright");
  CampaignOptions opts;
  opts.runs = 2;
  opts.fault_spec = "crash@step=3";
  SimulatedImplementation imp(plant_.system, kScale, ImpPolicy{kScale, {}});

  // Must not throw out of campaign_run.
  const CampaignReport report = campaign(strat, imp, opts);
  EXPECT_EQ(report.verdict, CampaignVerdict::kUnresponsive);
  for (const RunOutcome& o : report.outcomes) {
    EXPECT_EQ(o.report.verdict, Verdict::kInconclusive);
    EXPECT_EQ(o.report.code, ReasonCode::kImpCrash) << o.report.detail;
  }
}

TEST_F(ChaosTest, IdenticalSeedAndSpecGiveByteIdenticalReports) {
  const Strategy strat = strategy_for("control: A<> IUT.Bright");
  CampaignOptions opts;
  opts.runs = 4;
  opts.retries = 2;
  opts.fault_spec = "drop=0.25,delay=0..8,dup=0.1";
  opts.fault_seed = 11;

  SimulatedImplementation imp_a(plant_.system, kScale, ImpPolicy{kScale, {}});
  SimulatedImplementation imp_b(plant_.system, kScale, ImpPolicy{kScale, {}});
  const std::string json_a = campaign(strat, imp_a, opts).to_json();
  const std::string json_b = campaign(strat, imp_b, opts).to_json();
  EXPECT_EQ(json_a, json_b);

  opts.fault_seed = 12;
  SimulatedImplementation imp_c(plant_.system, kScale, ImpPolicy{kScale, {}});
  EXPECT_NE(campaign(strat, imp_c, opts).to_json(), json_a);
}

TEST_F(ChaosTest, RetriesRecoverRunsAcrossTheSweep) {
  const Strategy strat = strategy_for("control: A<> IUT.Bright");
  CampaignOptions opts;
  opts.runs = 2;
  opts.retries = 4;
  opts.fault_spec = "drop=0.5,reject=0.5";

  bool recovered = false;
  for (std::uint64_t seed = 1; seed <= 20 && !recovered; ++seed) {
    opts.fault_seed = seed;
    SimulatedImplementation imp(plant_.system, kScale, ImpPolicy{kScale, {}});
    const CampaignReport report = campaign(strat, imp, opts);
    // A run whose first attempt was inconclusive but whose final
    // verdict is PASS is a retry doing its job.
    for (const RunOutcome& o : report.outcomes) {
      if (o.attempts > 1 && o.report.verdict == Verdict::kPass) {
        recovered = true;
      }
    }
  }
  EXPECT_TRUE(recovered);
}

// LEP leg: the same no-false-FAIL sweep on the paper's second model.
TEST(ChaosLep, NoFalseFailOnConformingLep) {
  const models::Lep m = models::make_lep({.nodes = 3});
  GameSolver solver(m.system, TestPurpose::parse(m.system, models::lep_tp1()));
  const Strategy strat{solver.solve()};
  const decision::StrategySource source(strat);
  const tsystem::System plant = tsystem::extract_process(m.system, "IUT");

  CampaignOptions opts;
  opts.runs = 2;
  opts.retries = 2;
  opts.fault_spec = "drop=0.2,delay=0..4,dup=0.1,reject=0.2";
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    opts.fault_seed = seed;
    SimulatedImplementation imp(plant, kScale);
    const CampaignReport report =
        campaign_run(source, m.system, imp, kScale, opts);
    EXPECT_EQ(report.fails, 0u)
        << "false FAIL at seed " << seed << ": " << report.to_json();
  }
}

TEST(ChaosLep, ChaosFailsOnLepMutantsReproduceCleanly) {
  const models::Lep m = models::make_lep({.nodes = 3});
  GameSolver solver(m.system, TestPurpose::parse(m.system, models::lep_tp1()));
  const Strategy strat{solver.solve()};
  const decision::StrategySource source(strat);
  const tsystem::System plant = tsystem::extract_process(m.system, "IUT");
  const auto mutants = enumerate_mutants(plant);

  CampaignOptions opts;
  opts.runs = 1;
  opts.retries = 2;
  opts.fault_spec = "delay=0..2,dup=0.05";
  opts.fault_seed = 3;

  std::size_t chaos_fails = 0;
  // A slice of the mutant space keeps the leg fast; the smart-light
  // fixture covers every operator.
  for (std::size_t i = 0; i < mutants.size() && chaos_fails < 3; i += 2) {
    const tsystem::System mutated = apply_mutant(plant, mutants[i]);
    SimulatedImplementation imp(mutated, kScale);
    const CampaignReport report =
        campaign_run(source, m.system, imp, kScale, opts);
    if (report.verdict != CampaignVerdict::kFail) continue;
    ++chaos_fails;

    SimulatedImplementation clean_imp(mutated, kScale);
    TestExecutor clean_exec(strat, clean_imp, kScale);
    EXPECT_EQ(clean_exec.run().verdict, Verdict::kFail)
        << mutants[i].description;
  }
  EXPECT_GT(chaos_fails, 0u);
}

// ------------------------------------------------- idle_wait_cap path

// A strategy that always says "wait" with no next decision point, over
// a SPEC with no invariant deadline: nothing bounds the wait.  The
// executor must surface that as INCONCLUSIVE / kUnboundedWait, not
// silently sleep the cap and loop (satellite: idle_wait_cap coverage).
class EternalDelaySource final : public decision::DecisionSource {
 public:
  [[nodiscard]] game::Move decide(const semantics::ConcreteState&,
                                  std::int64_t) const override {
    game::Move move;
    move.kind = game::MoveKind::kDelay;
    move.next_decision_ticks = game::Move::kNoDecision;
    return move;
  }
  [[nodiscard]] semantics::TransitionInstance edge_instance(
      std::uint32_t) const override {
    throw std::logic_error("EternalDelaySource never picks an edge");
  }
};

TEST(IdleWaitCap, UnboundedQuiescenceIsInconclusiveNotSilent) {
  // One-process SPEC, no invariants: the monitor never imposes a
  // deadline, and the IUT (same plant) stays quiescent forever.
  tsystem::System sys("idle");
  sys.add_channel("ping", tsystem::Controllability::kUncontrollable);
  auto& p = sys.add_process("IUT", tsystem::Controllability::kUncontrollable);
  p.add_location("L0");
  p.set_initial(0);
  sys.finalize();

  SimulatedImplementation imp(sys, kScale);
  EternalDelaySource source;
  ExecutorOptions options;
  options.idle_wait_cap = 64;  // keep the single capped wait tiny
  TestExecutor exec(source, sys, imp, kScale, options);
  const TestReport report = exec.run();
  EXPECT_EQ(report.verdict, Verdict::kInconclusive);
  EXPECT_EQ(report.code, ReasonCode::kUnboundedWait) << report.detail;
  // Exactly one capped probe, not a step-budget burn.
  EXPECT_LE(report.steps, 2u);
}

}  // namespace
}  // namespace tigat::testing
