// Tests for the System/Process builder API and model validation.
#include <gtest/gtest.h>

#include "tsystem/system.h"

namespace tigat::tsystem {
namespace {

System tiny_system() {
  System sys("tiny");
  const Clock x = sys.add_clock("x");
  const ChannelId go = sys.add_channel("go", Controllability::kControllable);
  const ChannelId out = sys.add_channel("out", Controllability::kUncontrollable);

  Process& plant = sys.add_process("P", Controllability::kUncontrollable);
  const LocId a = plant.add_location("A");
  const LocId b = plant.add_location("B");
  plant.set_invariant(b, x <= 5);
  plant.add_edge(a, b).receive(go).guard(x >= 2).reset(x);
  plant.add_edge(b, a).send(out).guard(x < 5);

  Process& env = sys.add_process("E", Controllability::kControllable);
  const LocId e0 = env.add_location("E0");
  env.add_edge(e0, e0).send(go);
  env.add_edge(e0, e0).receive(out);
  return sys;
}

TEST(SystemBuilder, BasicConstructionAndLookup) {
  System sys = tiny_system();
  sys.finalize();
  EXPECT_EQ(sys.clock_count(), 2u);  // reference + x
  EXPECT_TRUE(sys.find_clock("x").has_value());
  EXPECT_FALSE(sys.find_clock("t0").has_value());  // reference not exposed
  EXPECT_TRUE(sys.find_channel("go").has_value());
  ASSERT_TRUE(sys.find_process("P").has_value());
  const Process& p = sys.processes()[*sys.find_process("P")];
  EXPECT_EQ(p.locations().size(), 2u);
  EXPECT_EQ(p.initial(), 0u);
  EXPECT_TRUE(p.find_location("B").has_value());
}

TEST(SystemBuilder, EdgeControllabilityFollowsChannels) {
  System sys = tiny_system();
  sys.finalize();
  const Process& p = sys.processes()[*sys.find_process("P")];
  // receive go: channel controllable → controllable.
  EXPECT_TRUE(sys.edge_controllable(p, p.edges()[0]));
  // send out: channel uncontrollable.
  EXPECT_FALSE(sys.edge_controllable(p, p.edges()[1]));
}

TEST(SystemBuilder, TauEdgesUseProcessDefaultAndOverride) {
  System sys("t");
  sys.add_clock("x");
  Process& plant = sys.add_process("P", Controllability::kUncontrollable);
  const LocId a = plant.add_location("A");
  plant.add_edge(a, a);                         // τ, defaults to plant role
  plant.add_edge(a, a).controllable(true);      // overridden
  sys.finalize();
  const Process& p = sys.processes()[0];
  EXPECT_FALSE(sys.edge_controllable(p, p.edges()[0]));
  EXPECT_TRUE(sys.edge_controllable(p, p.edges()[1]));
}

TEST(SystemBuilder, MaxConstantsFromGuardsInvariantsResets) {
  System sys("m");
  const Clock x = sys.add_clock("x");
  const Clock y = sys.add_clock("y");
  Process& p = sys.add_process("P", Controllability::kControllable);
  const LocId a = p.add_location("A");
  const LocId b = p.add_location("B");
  p.set_invariant(a, y <= 7);
  p.add_edge(a, b).guard(x >= 20).reset(x, 3);
  p.add_edge(b, a).guard(x - y < 4);
  sys.finalize();
  const auto& mc = sys.max_constants();
  ASSERT_EQ(mc.size(), 3u);
  EXPECT_EQ(mc[0], 0);
  EXPECT_EQ(mc[x.id], 20);
  EXPECT_EQ(mc[y.id], 7);
}

TEST(SystemBuilder, ConstraintSugarEncodesCorrectly) {
  System sys("s");
  const Clock x = sys.add_clock("x");
  const Clock y = sys.add_clock("y");
  const ClockConstraint c1 = x < 3;
  EXPECT_EQ(c1.i, x.id);
  EXPECT_EQ(c1.j, 0u);
  EXPECT_EQ(c1.bound, dbm::make_strict(3));
  const ClockConstraint c2 = x >= 2;
  EXPECT_EQ(c2.i, 0u);
  EXPECT_EQ(c2.j, x.id);
  EXPECT_EQ(c2.bound, dbm::make_weak(-2));
  const ClockConstraint c3 = (x - y) <= 4;
  EXPECT_EQ(c3.i, x.id);
  EXPECT_EQ(c3.j, y.id);
  EXPECT_EQ(c3.bound, dbm::make_weak(4));
  const ClockConstraint c4 = (x - y) > 1;
  EXPECT_EQ(c4.i, y.id);
  EXPECT_EQ(c4.j, x.id);
  EXPECT_EQ(c4.bound, dbm::make_strict(-1));
}

TEST(SystemBuilder, ValidationErrors) {
  {
    System sys("v");
    EXPECT_THROW(sys.finalize(), ModelError);  // no processes
  }
  {
    System sys("v");
    sys.add_clock("x");
    EXPECT_THROW(sys.add_clock("x"), ModelError);  // duplicate clock
  }
  {
    System sys("v");
    sys.add_process("P", Controllability::kControllable);
    EXPECT_THROW(sys.finalize(), ModelError);  // no locations
  }
  {
    System sys("v");
    Process& p = sys.add_process("P", Controllability::kControllable);
    p.add_location("A");
    EXPECT_THROW(p.add_location("A"), ModelError);  // duplicate location
  }
  {
    System sys("v");
    Process& p = sys.add_process("P", Controllability::kControllable);
    const LocId a = p.add_location("A");
    EXPECT_THROW(p.add_edge(a, 5), ModelError);  // bad endpoint
  }
}

TEST(SystemBuilder, UrgentAndCommittedKinds) {
  System sys("u");
  Process& p = sys.add_process("P", Controllability::kControllable);
  p.add_location("N");
  const LocId u = p.add_location("U", LocationKind::kUrgent);
  const LocId c = p.add_location("C", LocationKind::kCommitted);
  sys.finalize();
  EXPECT_EQ(p.locations()[u].kind, LocationKind::kUrgent);
  EXPECT_EQ(p.locations()[c].kind, LocationKind::kCommitted);
}

TEST(SystemBuilder, ToStringMentionsStructure) {
  System sys = tiny_system();
  sys.finalize();
  const std::string s = sys.to_string();
  EXPECT_NE(s.find("process P"), std::string::npos);
  EXPECT_NE(s.find("go"), std::string::npos);
  EXPECT_NE(s.find("[u]"), std::string::npos);
  EXPECT_NE(s.find("[c]"), std::string::npos);
}

TEST(SystemBuilder, FinalizeIsIdempotentAndFreezes) {
  System sys = tiny_system();
  sys.finalize();
  sys.finalize();
  EXPECT_THROW(sys.add_clock("y"), ModelError);
  EXPECT_THROW(sys.add_channel("c2", Controllability::kControllable),
               ModelError);
  EXPECT_THROW(sys.add_process("Q", Controllability::kControllable),
               ModelError);
}

}  // namespace
}  // namespace tigat::tsystem
