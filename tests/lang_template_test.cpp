// The template contract, quantified over n: elaborating the ONE
// shipped LEP template (examples/models/lep.tg) with `--param N=n`
// must produce a system structurally equal to the C++ builder
// models::build_lep(n) — same locations, edges, guards, invariants
// and controllability — and semantically identical down to the
// decision-table fingerprint (which hashes guard/assignment expression
// text).  This is the PR-1 roundtrip proof, now for every n instead of
// the frozen n = 3 unrolling.
//
// Plus unit coverage of the template machinery itself: comprehension
// stamping, `as` naming, whole-array assignment expansion, channel
// arrays, and the instantiation trace on diagnostics.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "decision/table.h"
#include "game/solver.h"
#include "lang/lang.h"
#include "models/lep.h"
#include "support/lep_template.h"
#include "support/system_structure.h"

namespace tigat::lang {
namespace {

using test_support::expect_same_structure;
using test_support::lep_template_path;
using test_support::load_lep_template;
using tsystem::System;
using tsystem::TestPurpose;

LoadedModel load_lep(std::int64_t n) { return load_lep_template(n); }
std::string lep_path() { return lep_template_path(); }

// ── the quantified roundtrip ──────────────────────────────────────────

TEST(LangTemplate, LepTemplateMatchesBuilderForEveryN) {
  for (std::int64_t n = 2; n <= 5; ++n) {
    SCOPED_TRACE("n = " + std::to_string(n));
    const LoadedModel parsed = load_lep(n);
    const models::Lep built =
        models::build_lep(static_cast<std::uint32_t>(n));
    expect_same_structure(parsed.system, built.system);
    // Stronger than structure: the fingerprint hashes the *text* of
    // every data guard and assignment, so stamped expressions must be
    // byte-identical to the builder's.
    EXPECT_EQ(decision::model_fingerprint(parsed.system),
              decision::model_fingerprint(built.system));
    ASSERT_EQ(parsed.purposes.size(), 3u);  // TP1-TP3 at every n
  }
}

TEST(LangTemplate, LepTemplateVerdictsMatchBuilderAtN2) {
  // n = 2 is the instance the roundtrip suite does NOT cover (it pins
  // n = 3); solving it is cheap enough for every purpose.
  const LoadedModel parsed = load_lep(2);
  const models::Lep built = models::build_lep(2);
  const std::vector<std::string> purposes = {
      models::lep_tp1(), models::lep_tp2(), models::lep_tp3()};
  for (const std::string& purpose : purposes) {
    SCOPED_TRACE(purpose);
    game::GameSolver a(parsed.system, TestPurpose::parse(parsed.system, purpose));
    game::GameSolver b(built.system, TestPurpose::parse(built.system, purpose));
    const auto sa = a.solve();
    const auto sb = b.solve();
    EXPECT_EQ(sa->winning_from_initial(), sb->winning_from_initial());
    EXPECT_EQ(sa->stats().keys, sb->stats().keys);
  }
}

TEST(LangTemplate, DefaultNIsThreeAndOverrideRescalesEverything) {
  const LoadedModel def = load_model(lep_path());
  EXPECT_EQ(def.system.data().decl(*def.system.data().find("inUse")).size, 3u);
  const LoadedModel five = load_lep(5);
  const auto& data = five.system.data();
  EXPECT_EQ(data.decl(*data.find("inUse")).size, 5u);
  EXPECT_EQ(data.decl(*data.find("msgAddr")).hi, 4);  // MaxAddr = N - 1
  EXPECT_EQ(data.decl(*data.find("best")).init, 4);
}

// ── template machinery ────────────────────────────────────────────────

constexpr const char* kRing = R"(
clock x;
const N = 3;
template P(i : 0..7) controlled {
  loc A { inv x <= i + 1; }
  loc B;
  init A;
  edge A -> B when x >= i;
}
system P(k) for k in 0..N-1;
)";

TEST(LangTemplate, ComprehensionStampsOneProcessPerValue) {
  const LoadedModel model = load_model_from_string(kRing, "ring.tg");
  ASSERT_EQ(model.system.processes().size(), 3u);
  for (std::uint32_t i = 0; i < 3; ++i) {
    const tsystem::Process& p = model.system.processes()[i];
    EXPECT_EQ(p.name(), "P" + std::to_string(i));
    // The parameter folded into the invariant: inv x <= i + 1.
    ASSERT_EQ(p.locations()[0].invariant.size(), 1u);
    EXPECT_EQ(p.locations()[0].invariant[0].bound,
              dbm::make_weak(static_cast<dbm::bound_t>(i + 1)));
  }
}

TEST(LangTemplate, ExplicitInstantiationAndAsNames) {
  const LoadedModel model = load_model_from_string(
      "clock x;\n"
      "template P(i : 0..7) controlled { loc A; init A; }\n"
      "system P(2), P(5) as Five;\n",
      "two.tg");
  ASSERT_EQ(model.system.processes().size(), 2u);
  EXPECT_EQ(model.system.processes()[0].name(), "P2");
  EXPECT_EQ(model.system.processes()[1].name(), "Five");
}

TEST(LangTemplate, ForBlocksNestAndPreserveEdgeOrder) {
  const LoadedModel model = load_model_from_string(
      "int[0, 9] a[4];\n"
      "process P controlled {\n"
      "  loc A; init A;\n"
      "  edge A -> A when a[0] == 9;\n"  // before the loops
      "  for (i : 0..1) { for (j : 0..1) {\n"
      "    edge A -> A when a[2 * i + j] == i do a[j] := i + j;\n"
      "  } }\n"
      "  edge A -> A when a[3] == 9;\n"  // after the loops
      "}\n",
      "nest.tg");
  const tsystem::Process& p = model.system.processes()[0];
  ASSERT_EQ(p.edges().size(), 6u);  // 1 + 2*2 + 1, in declaration order
}

TEST(LangTemplate, EmptyForRangeStampsNothing) {
  const LoadedModel model = load_model_from_string(
      "process P controlled {\n"
      "  loc A; init A;\n"
      "  for (i : 0..-1) { edge A -> A; }\n"
      "}\n",
      "empty.tg");
  EXPECT_TRUE(model.system.processes()[0].edges().empty());
}

TEST(LangTemplate, WholeArrayAssignmentExpandsPerCell) {
  const LoadedModel model = load_model_from_string(
      "int[0, 9] a[3];\n"
      "process P controlled {\n"
      "  loc A; init A;\n"
      "  edge A -> A do a[] := 7;\n"
      "}\n",
      "wa.tg");
  const tsystem::Edge& e = model.system.processes()[0].edges()[0];
  ASSERT_EQ(e.assignments.size(), 3u);  // one per cell, in index order
  for (std::size_t k = 0; k < 3; ++k) {
    EXPECT_EQ(e.assignments[k].index.to_string(model.system.data()),
              std::to_string(k));
  }
}

TEST(LangTemplate, ChannelArraysStampMembersAndResolveIndexedSyncs) {
  const LoadedModel model = load_model_from_string(
      "const N = 2;\n"
      "chan ctrl send[N];\n"
      "chan unctrl ack;\n"
      "template P(i : 0..1) uncontrolled {\n"
      "  loc A; init A;\n"
      "  edge A -> A on send[i]?;\n"
      "  edge A -> A on ack!;\n"
      "}\n"
      "system P(j) for j in 0..N-1;\n",
      "chan.tg");
  ASSERT_EQ(model.system.channels().size(), 3u);  // send[0], send[1], ack
  EXPECT_EQ(model.system.channels()[0].name, "send[0]");
  EXPECT_EQ(model.system.channels()[1].name, "send[1]");
  // P0 listens on send[0], P1 on send[1].
  for (std::uint32_t i = 0; i < 2; ++i) {
    EXPECT_EQ(model.system.processes()[i].edges()[0].channel.id, i);
  }
}

// ── diagnostics carry the instantiation trace ─────────────────────────

TEST(LangTemplate, ErrorsInsideTemplatesNameTheInstantiation) {
  std::vector<Diagnostic> diags;
  const auto model = compile_model(
      "template P(i : 0..7) controlled {\n"
      "  loc A; init A;\n"
      "  edge A -> A when nosuch == i;\n"
      "}\n"
      "system P(3);\n",
      "trace.tg", diags);
  EXPECT_FALSE(model.has_value());
  ASSERT_FALSE(diags.empty());
  const Diagnostic& d = diags.front();
  EXPECT_NE(d.message.find("unknown identifier 'nosuch'"), std::string::npos);
  ASSERT_EQ(d.notes.size(), 1u);
  EXPECT_NE(d.notes[0].message.find("in P(3), instantiated"),
            std::string::npos);
  EXPECT_EQ(d.notes[0].line, 5u);  // the `system P(3);` line
  const std::string rendered = d.render("trace.tg");
  EXPECT_NE(rendered.find("note: in P(3), instantiated at trace.tg:5:"),
            std::string::npos);
}

TEST(LangTemplate, NestedForIterationsStackOnTheTrace) {
  std::vector<Diagnostic> diags;
  const auto model = compile_model(
      "template P(i : 0..3) controlled {\n"
      "  loc A; init A;\n"
      "  for (a : 0..1) {\n"
      "    edge A -> A do a := i;\n"  // loop var is not assignable
      "  }\n"
      "}\n"
      "system P(2);\n",
      "nested.tg", diags);
  EXPECT_FALSE(model.has_value());
  ASSERT_FALSE(diags.empty());
  const Diagnostic& d = diags.front();
  EXPECT_NE(d.message.find("cannot be assigned"), std::string::npos);
  ASSERT_EQ(d.notes.size(), 2u);  // innermost first
  EXPECT_NE(d.notes[0].message.find("'for' iteration a = 0"),
            std::string::npos);
  EXPECT_NE(d.notes[1].message.find("in P(2), instantiated"),
            std::string::npos);
}

TEST(LangTemplate, OutOfRangeInstantiationIsRejected) {
  EXPECT_THROW(load_lep(1), LangError);   // template range is 2..16
  EXPECT_THROW(load_lep(17), LangError);
  try {
    (void)load_lep(1);
  } catch (const LangError& e) {
    EXPECT_NE(std::string(e.what()).find("outside the declared parameter "
                                         "range 2..16"),
              std::string::npos);
  }
}

TEST(LangTemplate, UnknownParamOverrideIsRejected) {
  CompileOptions options;
  options.params = {{"NoSuchConst", 4}};
  EXPECT_THROW((void)load_model(lep_path(), options), LangError);
}

}  // namespace
}  // namespace tigat::lang
